"""MEM-seeded read mapping (paper §I, citing Liu & Schmidt 2012).

Long-read aligners seed with MEMs: each read's MEMs against the reference
vote for a mapping locus on their diagonal. This module is the library-
grade version of that seeding stage: diagonal voting with indel-tolerant
bucketing, support scores, and a mapping-quality heuristic from the margin
between the best and second-best locus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import as_codes
from repro.core.session import MemSession
from repro.errors import InvalidParameterError
from repro.obs.tracer import Tracer, get_tracer


@dataclass(frozen=True)
class ReadMapping:
    """Mapping of one read: locus, support, and a confidence score."""

    locus: int | None  # reference position of the read's start (None = unmapped)
    support: int  # anchored bases voting for the locus
    second_support: int  # runner-up locus votes (repeat ambiguity signal)
    n_seeds: int

    @property
    def mapped(self) -> bool:
        return self.locus is not None

    @property
    def mapq(self) -> int:
        """Phred-like confidence from the best/second-best margin (0-60)."""
        if not self.mapped or self.support == 0:
            return 0
        margin = 1.0 - self.second_support / self.support
        return int(round(60 * max(0.0, min(1.0, margin))))


class ReadMapper:
    """Build once per reference, map many reads.

    Parameters
    ----------
    reference:
        Reference sequence (codes / string / PackedSequence).
    min_seed:
        Minimum MEM seed length (L of the underlying matcher).
    tolerance:
        Diagonal bucket width — the largest cumulative indel shift
        tolerated within one locus.
    tracer:
        Optional :class:`repro.obs.Tracer`; records ``mapper.map_read``
        spans and mapping counters on top of the session's own spans.
    """

    def __init__(self, reference, *, min_seed: int = 20, tolerance: int = 200,
                 tracer: Tracer | None = None, **matcher_kwargs):
        if tolerance < 1:
            raise InvalidParameterError(f"tolerance must be >= 1, got {tolerance}")
        self.tolerance = int(tolerance)
        self.tracer = get_tracer(tracer)
        # "Build once per reference" is literal now: the session caches the
        # per-row seed indexes, so every read after the first is match-only.
        self.session = MemSession(
            reference, min_length=min_seed, tracer=tracer, **matcher_kwargs
        )
        self.reference = self.session.reference

    def map_read(self, read) -> ReadMapping:
        read = as_codes(read)
        with self.tracer.span(
            "mapper.map_read", cat="mapping", n_read=int(read.size)
        ) as sp:
            mapping = self._map_read(read)
            sp.set(mapped=mapping.mapped, mapq=mapping.mapq)
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.counter(
                "mapper.reads", outcome="mapped" if mapping.mapped else "unmapped"
            ).inc()
        return mapping

    def _map_read(self, read) -> ReadMapping:
        mems = self.session.find_mems(read)
        if len(mems) == 0:
            return ReadMapping(locus=None, support=0, second_support=0, n_seeds=0)
        arr = mems.array
        diag = arr["r"] - arr["q"]
        bucket = diag // self.tolerance
        uniq, inverse = np.unique(bucket, return_inverse=True)
        votes = np.zeros(uniq.size, dtype=np.int64)
        np.add.at(votes, inverse, arr["length"])
        order = np.argsort(votes)[::-1]
        best = int(order[0])
        second = int(votes[order[1]]) if uniq.size > 1 else 0
        members = arr[inverse == best]
        locus = int(
            np.average(members["r"] - members["q"], weights=members["length"])
        )
        return ReadMapping(
            locus=locus,
            support=int(votes[best]),
            second_support=second,
            n_seeds=int(arr.size),
        )

    def map_reads(
        self,
        reads,
        *,
        batch_workers: int | None = None,
        max_in_flight: int | None = None,
    ) -> list[ReadMapping]:
        """Map many reads; returns mappings in input order.

        Runs on a :class:`repro.core.batch.BatchRunner` bound to the
        mapper's warm session, so reads are matched concurrently
        (``batch_workers`` threads, ``max_in_flight`` backpressure bound)
        while the per-row index cache is shared — single-flight — across
        all in-flight reads. Accepts any iterable, including a streaming
        :func:`repro.sequence.fasta.iter_fasta` generator. A failing read
        raises, exactly like a serial ``map_read`` loop would.
        """
        from repro.core.batch import BatchRunner

        runner = BatchRunner(
            self.session,
            workers=batch_workers,
            max_in_flight=max_in_flight,
        )
        return runner.map(self.map_read, reads)
