"""Brute-force reference MEM finder — the test suite's ground truth.

Deliberately implemented with a *different* algorithm from everything else
in the library: a per-diagonal run-length scan of the full ``|R| × |Q|``
match matrix. It shares no code with the GPUMEM pipeline or the baselines,
so agreement between them is meaningful evidence of correctness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.types import concat_triplets, make_triplets, unique_mems


def brute_force_mems(
    reference: np.ndarray,
    query: np.ndarray,
    min_length: int,
) -> np.ndarray:
    """All MEM triplets ``(r, q, λ)`` with ``λ >= min_length``.

    Definition (paper §II): ``R[r+i] == Q[q+i]`` for ``i < λ``, and the
    match cannot be extended: ``r == 0 or q == 0 or R[r-1] != Q[q-1]`` on
    the left, ``r+λ == |R| or q+λ == |Q| or R[r+λ] != Q[q+λ]`` on the right.

    Cost is ``Θ(|R| · |Q|)`` (vectorized per diagonal) — use on test-sized
    inputs only.
    """
    reference = np.ascontiguousarray(reference, dtype=np.uint8)
    query = np.ascontiguousarray(query, dtype=np.uint8)
    if min_length < 1:
        raise InvalidParameterError(f"min_length must be >= 1, got {min_length}")
    nr, nq = reference.size, query.size
    parts = []
    for d in range(-(nq - 1), nr):  # diagonal: r - q == d
        r0 = max(d, 0)
        q0 = r0 - d
        span = min(nr - r0, nq - q0)
        if span < min_length:
            continue
        eq = reference[r0 : r0 + span] == query[q0 : q0 + span]
        # run starts: eq[i] and not eq[i-1]; run ends: eq[i] and not eq[i+1]
        padded = np.concatenate(([False], eq, [False]))
        starts = np.nonzero(padded[1:-1] & ~padded[:-2])[0]
        ends = np.nonzero(padded[1:-1] & ~padded[2:])[0]
        lengths = ends - starts + 1
        keep = lengths >= min_length
        if keep.any():
            parts.append(
                make_triplets(r0 + starts[keep], q0 + starts[keep], lengths[keep])
            )
    return unique_mems(concat_triplets(parts))
