"""Synteny-block detection: cluster MEM anchors into conserved segments.

Whole-genome comparison (the paper's citation [5], GAME: "whole genome
alignment method using maximal exact match filtering") groups anchors into
*synteny blocks* — runs of anchors on nearby diagonals — before aligning
block by block. This module provides that grouping as a graph clustering:
anchors are nodes, and two anchors are connected when they are close in the
query and on nearby diagonals; connected components (via ``networkx``)
are the blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import InvalidParameterError
from repro.types import TRIPLET_DTYPE, MatchSet


@dataclass(frozen=True)
class SyntenyBlock:
    """One conserved segment: a cluster of near-diagonal anchors."""

    r_start: int
    r_end: int
    q_start: int
    q_end: int
    n_anchors: int
    anchored_bases: int

    @property
    def diagonal(self) -> float:
        """Mean offset ``r − q`` of the block."""
        return (self.r_start - self.q_start + self.r_end - self.q_end) / 2

    @property
    def span(self) -> int:
        return max(self.r_end - self.r_start, self.q_end - self.q_start)

    @property
    def density(self) -> float:
        """Anchored bases per spanned base (1.0 = gap-free)."""
        return self.anchored_bases / self.span if self.span else 1.0


def _as_array(mems) -> np.ndarray:
    if isinstance(mems, MatchSet):
        return mems.array
    arr = np.asarray(mems)
    if arr.dtype != TRIPLET_DTYPE:
        raise TypeError("synteny_blocks expects a MatchSet or TRIPLET_DTYPE array")
    return arr


def synteny_blocks(
    mems,
    *,
    max_gap: int = 1000,
    max_diagonal_drift: int = 100,
    min_anchors: int = 1,
    min_bases: int = 0,
) -> list[SyntenyBlock]:
    """Cluster anchors into synteny blocks.

    Two anchors join the same block when their query gap is at most
    ``max_gap`` *and* their diagonals differ by at most
    ``max_diagonal_drift`` (small indels within a conserved segment).
    Blocks are returned sorted by query start, filtered by ``min_anchors``
    and ``min_bases``.

    The neighbour search sorts anchors by diagonal so each anchor only
    probes the diagonal window around it — ``O(n log n + edges)``.
    """
    if max_gap < 0 or max_diagonal_drift < 0:
        raise InvalidParameterError("gaps/drift must be non-negative")
    arr = _as_array(mems)
    n = int(arr.size)
    if n == 0:
        return []

    diag = (arr["r"] - arr["q"]).astype(np.int64)
    order = np.argsort(diag, kind="stable")
    d_sorted = diag[order]

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # For each anchor, link to anchors within the diagonal window that are
    # also within the query gap.
    starts = np.searchsorted(d_sorted, d_sorted - max_diagonal_drift, side="left")
    ends = np.searchsorted(d_sorted, d_sorted + max_diagonal_drift, side="right")
    q = arr["q"]
    lam = arr["length"]
    for pos in range(n):
        i = order[pos]
        window = order[starts[pos] : ends[pos]]
        if window.size <= 1:
            continue
        near = window[
            (q[window] <= q[i] + lam[i] + max_gap)
            & (q[window] + lam[window] + max_gap >= q[i])
        ]
        for j in near:
            if j != i:
                graph.add_edge(int(i), int(j))

    blocks: list[SyntenyBlock] = []
    for component in nx.connected_components(graph):
        idx = np.fromiter(component, dtype=np.int64)
        sub = arr[idx]
        block = SyntenyBlock(
            r_start=int(sub["r"].min()),
            r_end=int((sub["r"] + sub["length"]).max()),
            q_start=int(sub["q"].min()),
            q_end=int((sub["q"] + sub["length"]).max()),
            n_anchors=int(idx.size),
            anchored_bases=int(sub["length"].sum()),
        )
        if block.n_anchors >= min_anchors and block.anchored_bases >= min_bases:
            blocks.append(block)
    blocks.sort(key=lambda b: (b.q_start, b.r_start))
    return blocks


def block_coverage(blocks: list[SyntenyBlock], n_query: int) -> float:
    """Fraction of the query covered by synteny-block query spans."""
    if n_query <= 0:
        return 0.0
    covered = np.zeros(n_query + 1, dtype=np.int64)
    for b in blocks:
        covered[max(0, b.q_start)] += 1
        covered[min(n_query, b.q_end)] -= 1
    depth = np.cumsum(covered[:-1])
    return float((depth > 0).mean())
