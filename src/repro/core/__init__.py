"""GPUMEM core — the paper's contribution.

Public surface:

- :class:`~repro.core.params.GpuMemParams` — validated parameter set
  (Table I symbols), including the Eq. (1) sparsity constraint.
- :class:`~repro.core.matcher.GpuMem` — the end-to-end matcher over either
  backend (``"vectorized"`` production path or ``"simulated"`` SIMT path).
- :func:`~repro.core.matcher.find_mems` — one-call convenience API.
- :class:`~repro.core.session.MemSession` — reusable index session for
  many-query workloads (build the reference's row indexes once).
- :class:`~repro.core.pipeline.Pipeline` /
  :class:`~repro.core.pipeline.PipelineStats` — the staged extraction
  engine and its typed statistics.
- Executors (:mod:`repro.core.executors`) — serial / thread-pool / banded /
  process strategies over independent tile rows.
- :class:`~repro.core.serve.MemServer` — long-lived serving front end with
  admission control and graceful drain (the ``gpumem serve`` engine).
- :func:`~repro.core.reference.brute_force_mems` — independent ground truth.
"""

from repro.core.batch import BatchError, BatchResult, BatchRunner, find_mems_batch
from repro.core.chaining import Chain, chain_anchors
from repro.core.distance import distance_matrix, mem_coverage, mem_distance
from repro.core.executors import (
    BandedExecutor,
    ProcessPoolRowExecutor,
    SerialExecutor,
    ThreadPoolRowExecutor,
    make_executor,
)
from repro.core.mapping import ReadMapper, ReadMapping
from repro.core.matcher import GpuMem, find_mems
from repro.core.multi_device import find_mems_multi_device
from repro.core.params import GpuMemParams
from repro.core.pipeline import Pipeline, PipelineStats
from repro.core.reference import brute_force_mems
from repro.core.serve import MemServer, ServeResult
from repro.core.session import (
    MemSession,
    clear_session_cache,
    get_session,
)
from repro.core.synteny import SyntenyBlock, block_coverage, synteny_blocks
from repro.core.variants import (
    StrandedMems,
    find_mems_both_strands,
    find_mums,
    find_rare_mems,
)

__all__ = [
    "GpuMemParams",
    "GpuMem",
    "find_mems",
    "brute_force_mems",
    "Pipeline",
    "PipelineStats",
    "MemSession",
    "BatchRunner",
    "BatchResult",
    "BatchError",
    "find_mems_batch",
    "get_session",
    "clear_session_cache",
    "SerialExecutor",
    "ThreadPoolRowExecutor",
    "BandedExecutor",
    "ProcessPoolRowExecutor",
    "make_executor",
    "MemServer",
    "ServeResult",
    "find_mums",
    "find_rare_mems",
    "find_mems_both_strands",
    "StrandedMems",
    "Chain",
    "chain_anchors",
    "SyntenyBlock",
    "synteny_blocks",
    "block_coverage",
    "find_mems_multi_device",
    "ReadMapper",
    "ReadMapping",
    "mem_coverage",
    "mem_distance",
    "distance_matrix",
]
