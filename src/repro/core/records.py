"""Multi-record matching: FASTA files with many sequences.

Real chromosome/assembly FASTA files hold many records. MEM semantics are
per-pair — a match must not cross a record boundary — so the correct
treatment is the cartesian product of (reference record, query record)
runs with coordinates local to each record. This module provides that
driver with a shared matcher (parameters validated once) and aggregate
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.matcher import GpuMem, _as_codes
from repro.errors import InvalidParameterError
from repro.types import MatchSet


@dataclass(frozen=True)
class RecordMatch:
    """MEMs of one (reference record, query record) pair."""

    reference_name: str
    query_name: str
    mems: MatchSet

    def __len__(self) -> int:
        return len(self.mems)


def _normalize(records) -> list[tuple[str, np.ndarray]]:
    out = []
    for i, rec in enumerate(records):
        if hasattr(rec, "header") and hasattr(rec, "codes"):  # FastaRecord
            out.append((rec.header, np.asarray(rec.codes, dtype=np.uint8)))
        elif isinstance(rec, tuple) and len(rec) == 2:
            out.append((str(rec[0]), _as_codes(rec[1])))
        else:
            out.append((f"seq{i}", _as_codes(rec)))
    return out


def find_mems_records(
    reference_records,
    query_records,
    min_length: int,
    **matcher_kwargs,
) -> list[RecordMatch]:
    """All-vs-all MEMs between reference records and query records.

    Records may be :class:`~repro.sequence.fasta.FastaRecord` objects,
    ``(name, sequence)`` tuples, or bare sequences (auto-named ``seqN``).
    Returns one :class:`RecordMatch` per pair, in input order; matches never
    span record boundaries by construction.
    """
    refs = _normalize(reference_records)
    qrys = _normalize(query_records)
    if not refs or not qrys:
        raise InvalidParameterError("need at least one record on each side")
    matcher = GpuMem(min_length=min_length, **matcher_kwargs)
    out: list[RecordMatch] = []
    for ref_name, ref_codes in refs:
        for qry_name, qry_codes in qrys:
            mems = matcher.find_mems(ref_codes, qry_codes)
            out.append(
                RecordMatch(reference_name=ref_name, query_name=qry_name, mems=mems)
            )
    return out


def total_matches(matches: Sequence[RecordMatch]) -> int:
    return sum(len(m) for m in matches)


def best_pairing(matches: Sequence[RecordMatch]) -> dict[str, RecordMatch]:
    """For each query record, the reference record with the most anchored
    bases — the record-level assignment step of whole-assembly comparison."""
    best: dict[str, RecordMatch] = {}
    for m in matches:
        cur = best.get(m.query_name)
        if cur is None or (
            m.mems.total_matched_bases() > cur.mems.total_matched_bases()
        ):
            best[m.query_name] = m
    return best
