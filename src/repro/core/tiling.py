"""2-D search-space tiling (paper §III, Figure 1).

The ``|R| × |Q|`` space (reference on the y-axis, query on the x-axis) is cut
into ``ℓtile × ℓtile`` square tiles. Tiles are processed row by row: a tile
row shares one partial seed index built from its reference range, so only
``⌈ℓtile / Δs⌉`` index locations are resident at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class Tile:
    """One tile: half-open reference and query ranges plus grid coordinates."""

    row: int
    col: int
    r_start: int
    r_end: int
    q_start: int
    q_end: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.r_end - self.r_start, self.q_end - self.q_start)

    def contains(self, r: int, q: int) -> bool:
        return self.r_start <= r < self.r_end and self.q_start <= q < self.q_end


@dataclass(frozen=True)
class TilePlan:
    """The tile grid for one (reference, query) problem.

    ``n_rows`` × ``n_cols`` corresponds to the paper's ``n_r × n_c``. Border
    tiles are smaller when the sequence lengths are not multiples of
    ``tile_size`` (the paper pads; clipping is equivalent and avoids
    phantom coordinates).
    """

    n_reference: int
    n_query: int
    tile_size: int

    def __post_init__(self):
        if self.tile_size < 1:
            raise InvalidParameterError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.n_reference < 0 or self.n_query < 0:
            raise InvalidParameterError("sequence lengths must be non-negative")

    @property
    def n_rows(self) -> int:
        return -(-self.n_reference // self.tile_size) if self.n_reference else 0

    @property
    def n_cols(self) -> int:
        return -(-self.n_query // self.tile_size) if self.n_query else 0

    @property
    def n_tiles(self) -> int:
        return self.n_rows * self.n_cols

    def row_range(self, row: int) -> tuple[int, int]:
        """Reference range ``[r0, r1)`` of tile row ``row``."""
        if not 0 <= row < self.n_rows:
            raise InvalidParameterError(f"tile row {row} out of range")
        r0 = row * self.tile_size
        return r0, min(r0 + self.tile_size, self.n_reference)

    def col_range(self, col: int) -> tuple[int, int]:
        """Query range ``[q0, q1)`` of tile column ``col``."""
        if not 0 <= col < self.n_cols:
            raise InvalidParameterError(f"tile column {col} out of range")
        q0 = col * self.tile_size
        return q0, min(q0 + self.tile_size, self.n_query)

    def tile(self, row: int, col: int) -> Tile:
        r0, r1 = self.row_range(row)
        q0, q1 = self.col_range(col)
        return Tile(row=row, col=col, r_start=r0, r_end=r1, q_start=q0, q_end=q1)

    def tiles_in_row(self, row: int) -> Iterator[Tile]:
        """Tiles of one row, left to right — the paper's processing order."""
        for col in range(self.n_cols):
            yield self.tile(row, col)

    def __iter__(self) -> Iterator[Tile]:
        for row in range(self.n_rows):
            yield from self.tiles_in_row(row)

    def tile_of_point(self, r: int, q: int) -> Tile:
        """The unique tile containing 2-D point ``(r, q)``."""
        if not (0 <= r < self.n_reference and 0 <= q < self.n_query):
            raise InvalidParameterError(f"point ({r}, {q}) outside the search space")
        return self.tile(r // self.tile_size, q // self.tile_size)
