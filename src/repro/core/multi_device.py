"""Multi-device MEM extraction (the distributed extension, cf. paper ref [1]).

The paper cites Abouelhoda & Seif's MPI-distributed MEM computation and
ends by proposing newer/multiple GPUs. GPUMEM's tiling makes the extension
natural: tile *rows* are independent given the (read-only) sequences, so
``D`` devices each take a contiguous band of rows; only the out-tile lists
must be merged globally — exactly the host merge that already exists.

This module is now a thin wrapper: the band loop lives in
:class:`repro.core.executors.BandedExecutor` and the row/index/tile work in
the shared :class:`repro.core.pipeline.Pipeline`, so the multi-device path
can never drift from the single-device one.

Correctness needs no new argument: each device runs the standard pipeline
on its rows; MEMs crossing a band boundary surface as boundary-touching
fragments on both devices and are re-extended by the shared host merge
(DESIGN.md §5 note 2 covers the missing-fragment case too).

The timing model is the deterministic ideal-parallel one used throughout
(DESIGN.md §2): per-device work is timed sequentially and the parallel
extraction time is the slowest device plus the merge.
"""

from __future__ import annotations

from repro.core.executors import BandedExecutor, DeviceShare, partition_rows
from repro.core.params import GpuMemParams
from repro.core.pipeline import Pipeline, as_codes
from repro.obs.tracer import Tracer
from repro.types import MatchSet

__all__ = ["DeviceShare", "partition_rows", "find_mems_multi_device"]


def find_mems_multi_device(
    reference,
    query,
    params: GpuMemParams,
    *,
    n_devices: int = 2,
    tracer: Tracer | None = None,
) -> tuple[MatchSet, dict]:
    """Row-banded multi-device extraction.

    Returns ``(mems, stats)`` where stats include per-device seconds and
    the modeled parallel time (``max`` over devices + host merge).
    ``tracer`` records one ``executor:band`` span per modeled device on top
    of the standard pipeline spans.
    """
    reference = as_codes(reference)
    query = as_codes(query)
    executor = BandedExecutor(n_bands=n_devices)
    pipeline = Pipeline(params, executor=executor, tracer=tracer)
    triplets, pstats = pipeline.run(reference, query)

    device_seconds = [share.seconds for share in executor.shares]
    merge_seconds = pstats.host_merge_time
    stats = {
        "n_devices": n_devices,
        "n_rows": pstats.n_rows,
        "rows_per_device": [len(share.rows) for share in executor.shares],
        "device_seconds": device_seconds,
        "merge_seconds": merge_seconds,
        "parallel_seconds": max(device_seconds, default=0.0) + merge_seconds,
        "serial_seconds": sum(device_seconds) + merge_seconds,
        "n_cross_band_fragments": pstats.n_out_tile_fragments,
    }
    mems = MatchSet(triplets, stats=pstats)
    mems.stats.update(stats)
    return mems, stats
