"""Multi-device MEM extraction (the distributed extension, cf. paper ref [1]).

The paper cites Abouelhoda & Seif's MPI-distributed MEM computation and
ends by proposing newer/multiple GPUs. GPUMEM's tiling makes the extension
natural: tile *rows* are independent given the (read-only) sequences, so
``D`` devices each take a contiguous band of rows; only the out-tile lists
must be merged globally — exactly the host merge that already exists.

Correctness needs no new argument: each device runs the standard pipeline
on its rows; MEMs crossing a band boundary surface as boundary-touching
fragments on both devices and are re-extended by the shared host merge
(DESIGN.md §5 note 2 covers the missing-fragment case too).

The timing model is the deterministic ideal-parallel one used throughout
(DESIGN.md §2): per-device work is timed sequentially and the parallel
extraction time is the slowest device plus the merge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.host_merge import host_merge
from repro.core.matcher import _as_codes
from repro.core.params import GpuMemParams
from repro.core.tiling import TilePlan
from repro.core.vectorized import stage_tile
from repro.errors import InvalidParameterError
from repro.index.kmer_index import build_kmer_index
from repro.sequence.packed import kmer_codes
from repro.types import MatchSet, concat_triplets


@dataclass
class DeviceShare:
    """One device's slice of the work and its measured cost."""

    device_id: int
    rows: list[int]
    seconds: float = 0.0
    n_in_tile: int = 0
    n_out_tile: int = 0


def partition_rows(n_rows: int, n_devices: int) -> list[list[int]]:
    """Contiguous near-equal bands of tile rows, one per device."""
    if n_devices < 1:
        raise InvalidParameterError(f"n_devices must be >= 1, got {n_devices}")
    bounds = np.linspace(0, n_rows, n_devices + 1).astype(int)
    return [list(range(bounds[d], bounds[d + 1])) for d in range(n_devices)]


def find_mems_multi_device(
    reference,
    query,
    params: GpuMemParams,
    *,
    n_devices: int = 2,
) -> tuple[MatchSet, dict]:
    """Row-banded multi-device extraction.

    Returns ``(mems, stats)`` where stats include per-device seconds and
    the modeled parallel time (``max`` over devices + host merge).
    """
    reference = _as_codes(reference)
    query = _as_codes(query)
    p = params
    plan = TilePlan(
        n_reference=reference.size, n_query=query.size, tile_size=p.tile_size
    )
    shares = [
        DeviceShare(device_id=d, rows=rows)
        for d, rows in enumerate(partition_rows(plan.n_rows, n_devices))
    ]
    query_kmers = (
        kmer_codes(query, p.seed_length)
        if query.size >= p.seed_length
        else np.empty(0, dtype=np.int64)
    )

    in_parts: list[np.ndarray] = []
    out_parts: list[np.ndarray] = []
    for share in shares:
        t0 = time.perf_counter()
        for row in share.rows:
            r0, r1 = plan.row_range(row)
            index = build_kmer_index(
                reference, seed_length=p.seed_length, step=p.step,
                region_start=r0, region_end=r1,
            )
            for tile in plan.tiles_in_row(row):
                result = stage_tile(
                    reference, query, query_kmers, tile, index, p.min_length
                )
                if result.in_tile.size:
                    in_parts.append(result.in_tile)
                    share.n_in_tile += int(result.in_tile.size)
                if result.out_tile.size:
                    out_parts.append(result.out_tile)
                    share.n_out_tile += int(result.out_tile.size)
        share.seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    out_tile = concat_triplets(out_parts)
    crossing = host_merge(reference, query, out_tile, p.min_length)
    merge_seconds = time.perf_counter() - t0

    mems = MatchSet(concat_triplets(in_parts + [crossing]))
    device_seconds = [s.seconds for s in shares]
    stats = {
        "n_devices": n_devices,
        "n_rows": plan.n_rows,
        "rows_per_device": [len(s.rows) for s in shares],
        "device_seconds": device_seconds,
        "merge_seconds": merge_seconds,
        "parallel_seconds": max(device_seconds, default=0.0) + merge_seconds,
        "serial_seconds": sum(device_seconds) + merge_seconds,
        "n_cross_band_fragments": int(out_tile.size),
    }
    mems.stats.update(stats)
    return mems, stats
