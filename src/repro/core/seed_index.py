"""GPU-side partial index construction (paper Algorithm 1, §III-A).

Four steps, exactly as published:

1. **Count** — one thread per indexed location computes its seed value and
   ``atomicAdd``'s ``ptrs[s + 1]``. Run as a real per-thread kernel: the
   simulator's shuffled thread schedule makes the atomic traffic
   order-independent, as on hardware.
2. **Prefix sum** over ``ptrs`` (device primitive, Blelloch-costed).
3. **Fill** — one thread per location reserves a slot in ``locs`` with an
   ``atomicAdd`` on a scratch copy of ``ptrs`` and writes its position.
   Because of the shuffled schedule, ``locs`` comes out *unsorted within
   each seed* — the very property that motivates step 4.
4. **Sort** — per-seed segment sort (device primitive, one thread per seed,
   so the cost model sees the seed-skew imbalance).

The result is bit-identical to the sequential reference
:func:`repro.index.kmer_index.build_kmer_index` (tested), while the device
accumulates realistic cost/imbalance accounting.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import Device
from repro.gpu.primitives import gpu_prefix_sum, gpu_segment_sort
from repro.index.kmer_index import KmerSeedIndex


def _seed_value(codes: np.ndarray, pos: int, seed_length: int) -> int:
    """Big-endian base-4 seed value at ``pos`` (scalar; kernel-side)."""
    v = 0
    for j in range(seed_length):
        v = (v << 2) | int(codes[pos + j])
    return v


def count_kernel(ctx, codes, positions, ptrs, seed_length):
    """Step 1: each thread counts its strided share of locations."""
    stride = ctx.bdim * ctx.gdim
    for i in range(ctx.gtid, positions.size, stride):
        s = _seed_value(codes, int(positions[i]), seed_length)
        ctx.work(seed_length)  # reading/packing the seed
        ctx.atomic_add(ptrs, s + 1, 1)
    yield


def fill_kernel(ctx, codes, positions, temp, locs, seed_length):
    """Step 3: each thread reserves a slot and writes its location."""
    stride = ctx.bdim * ctx.gdim
    for i in range(ctx.gtid, positions.size, stride):
        pos = int(positions[i])
        s = _seed_value(codes, pos, seed_length)
        ctx.work(seed_length)
        slot = ctx.atomic_add(temp, s, 1)
        locs[slot] = pos
        ctx.work(1)
    yield


def build_kmer_index_gpu(
    device: Device,
    codes: np.ndarray,
    *,
    seed_length: int,
    step: int,
    region_start: int = 0,
    region_end: int | None = None,
    block: int = 128,
) -> KmerSeedIndex:
    """Run Algorithm 1 on the simulated device.

    Same contract as :func:`repro.index.kmer_index.build_kmer_index`; the
    device's report list gains the four steps' kernels/primitives.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    n = codes.size
    region_end = n if region_end is None else min(int(region_end), n)
    region_start = max(0, int(region_start))

    first = ((region_start + step - 1) // step) * step
    last = min(region_end, n - seed_length + 1)
    if first >= last:
        positions = np.empty(0, dtype=np.int64)
    else:
        positions = np.arange(first, last, step, dtype=np.int64)

    n_seeds = 4**seed_length
    tag = f"row{region_start}"
    ptrs = device.memory.alloc(f"ptrs/{tag}", n_seeds + 1, np.int64)
    locs = device.memory.alloc(f"locs/{tag}", max(positions.size, 1), np.int64)

    if positions.size:
        grid = max(1, -(-positions.size // block))
        device.launch(
            count_kernel, grid, block, codes, positions, ptrs, seed_length,
            name="index:count",
        )
        gpu_prefix_sum(device, ptrs, exclusive=False)  # ptrs[s+1] was counted
        temp = ptrs[:-1].copy()  # "temp" scratch of Algorithm 1 step 3
        device.launch(
            fill_kernel, grid, block, codes, positions, temp, locs, seed_length,
            name="index:fill",
        )
        gpu_segment_sort(device, locs[: positions.size], ptrs)

    index = KmerSeedIndex(
        seed_length=seed_length,
        step=step,
        region_start=region_start,
        region_end=region_end,
        ptrs=ptrs.copy(),
        locs=locs[: positions.size].copy(),
    )
    device.memory.free(f"ptrs/{tag}")
    device.memory.free(f"locs/{tag}")
    return index
