"""Per-block MEM extraction kernel (paper §III-B, Algorithms 2 & 3).

One launch covers one tile: ``grid = n_block`` blocks of ``τ`` threads, each
block owning the ``ℓtile × ℓblock`` strip ``[tile.r_start, tile.r_end) ×
[b0, b1)``. A block runs ``w`` rounds; in round ``i`` thread ``t``'s
*original* seed is the query position ``b0 + t·w + i`` (§III, Figure 1).

Each round, with real barriers between stages:

1. seed lookup → per-thread loads;
2. **Algorithm 2**: cooperative Hillis–Steele scans of ``load``/``task``,
   proportional ``assign`` fill, per-thread binary search → ``group``
   (skipped when load balancing is off — Fig. 7's baseline);
3. **generation** (§III-B2): the group's threads split the seed's index
   locations in strides and right-extend each hit seed-by-seed to ``w``;
4. **Algorithm 3**: the ``2·log2 τ − 1``-iteration tree combine over the
   shared per-rank triplet store.

(The paper's §III-B3 closing left seed-wise extension is subsumed by the
final character expansion below and is skipped — results are identical
because expansion is exact.)

After the rounds, the block's surviving triplets are expanded character by
character, clipped at the block box (§III-B4), and split into *in-block*
MEMs (mismatch-delimited strictly inside, ``λ >= L`` — final) and
*out-block* triplets (boundary-touching — forwarded to the tile stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.combine import combine_distances, log2_int, try_merge
from repro.gpu.costmodel import GLOBAL_MEM_COST


@dataclass
class BlockTask:
    """Host-side state shared with the kernel for one tile's launch."""

    reference: np.ndarray
    query: np.ndarray
    ptrs: np.ndarray
    locs: np.ndarray
    seed_length: int
    w: int
    min_length: int
    r_lo: int
    r_hi: int
    q_lo: int
    q_hi: int
    block_width: int
    balancing: bool
    #: per-block outputs (filled by the kernel)
    in_block: dict[int, list[tuple[int, int, int]]] = field(default_factory=dict)
    out_block: dict[int, list[tuple[int, int, int]]] = field(default_factory=dict)
    #: per-block accumulated round survivors + per-round store (scratch)
    _acc: dict[int, list[list[int]]] = field(default_factory=dict)
    _store: dict[int, list[list[list[int]]]] = field(default_factory=dict)

    @property
    def n_blocks(self) -> int:
        span = self.q_hi - self.q_lo
        return max(1, -(-span // self.block_width))


def _seed_value(codes: np.ndarray, pos: int, k: int) -> int:
    v = 0
    for j in range(k):
        v = (v << 2) | int(codes[pos + j])
    return v


def _right_extend_seedwise(ctx, R, Q, r, q, seed_length, w):
    """§III-B2: grow λ in ℓs jumps while full seeds match, up to λ >= w."""
    nr, nq = R.size, Q.size
    lam = seed_length
    while lam < w:
        matched = 0
        while (
            matched < seed_length
            and r + lam + matched < nr
            and q + lam + matched < nq
            and R[r + lam + matched] == Q[q + lam + matched]
        ):
            matched += 1
        # one packed-word fetch per side plus the character compares
        ctx.work(GLOBAL_MEM_COST + min(matched + 1, seed_length))
        if matched == seed_length:
            lam += seed_length
        else:
            break
    return lam


def block_kernel(ctx, st: BlockTask):
    """The per-thread program. ``yield`` = ``__syncthreads``."""
    tau = ctx.bdim
    k = log2_int(tau)
    distances = combine_distances(tau)
    R, Q = st.reference, st.query
    ls, w = st.seed_length, st.w
    b0 = st.q_lo + ctx.bid * st.block_width
    b1 = min(b0 + st.block_width, st.q_hi)
    tid = ctx.tid

    load = ctx.shared.array("load", tau, np.int64)
    task = ctx.shared.array("task", tau, np.int64)
    assign = ctx.shared.array("assign", tau + 1, np.int64)
    seed_q = ctx.shared.array("seed_q", tau, np.int64)
    seed_lo = ctx.shared.array("seed_lo", tau, np.int64)
    seed_hi = ctx.shared.array("seed_hi", tau, np.int64)
    scratch = ctx.shared.array("scratch", tau, np.int64)

    if tid == 0:
        st._acc[ctx.bid] = []
        st._store[ctx.bid] = [[] for _ in range(tau)]
    yield

    for rnd in range(w):
        # ---- stage 1: original seed assignment + load --------------------
        q = b0 + tid * w + rnd
        valid = q < b1 and q + ls <= Q.size
        if valid:
            s = _seed_value(Q, q, ls)
            # seed fetch + the two ptrs reads are global-memory traffic
            ctx.work(ls + 2 * GLOBAL_MEM_COST)
            lo = int(st.ptrs[s])
            hi = int(st.ptrs[s + 1])
            cnt = hi - lo
        else:
            lo = hi = cnt = 0
        load[tid] = cnt
        task[tid] = 1 if cnt > 0 else 0
        yield

        if st.balancing:
            # ---- stage 2: Algorithm 2 (cooperative scans, assign, group) --
            for arr in (load, task):  # two inclusive Hillis–Steele scans
                d = 1
                while d < tau:
                    val = int(arr[tid - d]) if tid >= d else 0
                    yield
                    arr[tid] += val
                    ctx.work(1)
                    yield
                    d *= 2
            n_ranks = int(task[tau - 1])
            t_load = int(load[tau - 1])
            t_idle = tau - n_ranks

            if cnt > 0:
                j = int(task[tid]) - 1  # this thread's seed rank
                seed_q[j] = q
                seed_lo[j] = lo
                seed_hi[j] = hi
                assign[j + 1] = task[tid] + (t_idle * load[tid]) // max(t_load, 1)
                ctx.work(2)
            if tid == 0:
                assign[0] = 0
            yield

            if n_ranks > 0:
                # binary search: largest g with assign[g] <= tid
                g_lo, g_hi = 0, n_ranks - 1
                while g_lo < g_hi:
                    mid = (g_lo + g_hi + 1) >> 1
                    if assign[mid] <= tid:
                        g_lo = mid
                    else:
                        g_hi = mid - 1
                    ctx.work(1)
                g = g_lo
                first = int(assign[g])
                members = int(assign[g + 1]) - first
            else:
                g = -1
                first = 0
                members = 1
            yield
        else:
            # ---- Fig. 7 baseline: static assignment, no Algorithm 2 ------
            # Each thread works its own seed alone; combine runs over raw
            # thread indices (chains still occupy consecutive threads, so
            # the tree schedule applies unchanged).
            n_ranks = tau
            seed_q[tid] = q
            seed_lo[tid] = lo
            seed_hi[tid] = hi
            g = tid  # rank == thread; empty seeds simply produce nothing
            first = tid
            members = 1
            yield

        # ---- stage 3: generation (§III-B2) --------------------------------
        store = st._store[ctx.bid]
        if tid == 0:
            for lst in store:
                lst.clear()
                ctx.work(1)
        yield
        my_trips: list[list[int]] = []
        if g >= 0 and members > 0:
            gq = int(seed_q[g])
            for idx in range(int(seed_lo[g]) + (tid - first), int(seed_hi[g]), members):
                r = int(st.locs[idx])
                ctx.work(2 * GLOBAL_MEM_COST)  # locs read + triplet store
                lam = _right_extend_seedwise(ctx, R, Q, r, gq, ls, w)
                trip = [r, gq, lam]
                my_trips.append(trip)
                store[g].append(trip)
        yield

        # ---- stage 4: Algorithm 3 tree combine ----------------------------
        for it, d in enumerate(distances):
            if g >= 0:
                ctrl = g - (d if it >= k else 0)
                if ctrl >= 0 and ctrl % (2 * d) == 0:
                    trgt = g + d
                    if trgt < n_ranks:
                        for s_trip in my_trips:
                            if s_trip[2] <= 0:
                                continue
                            for t_trip in store[trgt]:
                                ctx.work(1)
                                merged = try_merge(s_trip, t_trip)
                                if merged is not None:
                                    s_trip[0], s_trip[1], s_trip[2] = merged
                                    t_trip[2] = 0
            yield

        # ---- collect round survivors --------------------------------------
        acc = st._acc[ctx.bid]
        for trip in my_trips:
            if trip[2] > 0:
                acc.append(trip)
                ctx.work(1)
        yield

    # ---- final stage: §III-B4 expansion + in/out-block split --------------
    acc = st._acc[ctx.bid]
    in_list: list[tuple[int, int, int]] = []
    out_list: list[tuple[int, int, int]] = []
    nr, nq = R.size, Q.size
    for idx in range(tid, len(acc), tau):
        r, q, lam = acc[idx]
        # expand left, clipped at the block box
        while r > st.r_lo and q > b0 and R[r - 1] == Q[q - 1]:
            r -= 1
            q -= 1
            lam += 1
            ctx.work(1)
        ctx.work(1)
        # expand right
        while (
            r + lam < min(st.r_hi, nr)
            and q + lam < min(b1, nq)
            and R[r + lam] == Q[q + lam]
        ):
            lam += 1
            ctx.work(1)
        ctx.work(1)
        # clip anything the seed-wise phase let stick out of the box
        end_cap = min(st.r_hi - r, b1 - q, nr - r, nq - q)
        touch_right = lam >= end_cap
        lam = min(lam, end_cap)
        touch_left = (r == st.r_lo) or (q == b0)
        if touch_left or touch_right:
            out_list.append((r, q, lam))
        elif lam >= st.min_length:
            in_list.append((r, q, lam))
    yield
    if tid == 0:
        st.in_block[ctx.bid] = []
        st.out_block[ctx.bid] = []
    yield
    st.in_block[ctx.bid].extend(in_list)
    st.out_block[ctx.bid].extend(out_list)
    yield
