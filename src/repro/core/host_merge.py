"""Host-side merge of out-tile triplets (paper §III-C2).

The per-tile stages forward every boundary-touching fragment here. The paper
sorts the (short) global out-tile list by ``r − q`` (ties on ``q``) on the
host and scans it to produce the final, longest MEMs. We do the same —
vectorized — with one added step from DESIGN.md §5 note 2: after the
diagonal chain-combine, each combined triplet is *re-extended to global
maximality*, because a MEM crossing a tile border may have had no aligned
sampled seed inside one of the tiles it crosses, leaving that fragment
missing from the chain.
"""

from __future__ import annotations

import numpy as np

from repro.index.compare import common_prefix_len, common_suffix_len
from repro.types import empty_triplets, make_triplets, unique_mems


def combine_diagonal(triplets: np.ndarray) -> np.ndarray:
    """Merge overlapping/adjacent triplets on equal diagonals.

    Implements the paper's overlap rule ``0 < (r' - r) = (q' - q) <= λ``
    transitively: after sorting by ``(r - q, q)``, connected overlap chains
    collapse to ``(min start, max end)``. Fully vectorized via a segmented
    running maximum of chain ends.
    """
    if triplets.size == 0:
        return empty_triplets()
    diag = triplets["r"] - triplets["q"]
    order = np.lexsort((triplets["q"], diag))
    t = triplets[order]
    diag = diag[order]
    q = t["q"]
    end = q + t["length"]

    # Segmented cumulative max of `end` within each diagonal group: offset
    # each group by a stride larger than any end value so the global
    # accumulate cannot leak across groups.
    group = np.cumsum(np.concatenate(([0], (np.diff(diag) != 0).astype(np.int64))))
    stride = int(end.max()) - int(q.min()) + 1
    # `group * stride` is an int64 product; with many diagonal groups and
    # far-apart query offsets it can exceed 2^63 - 1, where NumPy wraps
    # silently and the accumulate leaks across groups. Check the largest
    # key with exact Python ints and fall back to per-group accumulates.
    max_key = int(group[-1]) * stride + int(end.max())
    if max_key <= np.iinfo(np.int64).max:
        keyed = end + group * stride
        seg_cummax = np.maximum.accumulate(keyed) - group * stride
    else:
        starts = np.nonzero(np.concatenate(([True], np.diff(diag) != 0)))[0]
        bounds = np.append(starts, end.size)
        seg_cummax = np.empty_like(end)
        for a, b in zip(bounds[:-1], bounds[1:], strict=True):
            seg_cummax[a:b] = np.maximum.accumulate(end[a:b])

    new_chain = np.ones(t.size, dtype=bool)
    if t.size > 1:
        # A triplet starts a new chain if it is on a new diagonal or starts
        # strictly past everything reachable so far on its diagonal.
        same_diag = diag[1:] == diag[:-1]
        overlaps = q[1:] <= seg_cummax[:-1]
        new_chain[1:] = ~(same_diag & overlaps)
    chain_id = np.cumsum(new_chain) - 1
    starts_idx = np.nonzero(new_chain)[0]
    chain_q = q[starts_idx]
    chain_r = t["r"][starts_idx]
    chain_end = np.maximum.reduceat(end, starts_idx)
    return make_triplets(chain_r, chain_q, chain_end - chain_q)


def finalize_mems(
    reference: np.ndarray,
    query: np.ndarray,
    combined: np.ndarray,
    min_length: int,
) -> np.ndarray:
    """Re-extend combined triplets to global maximality, dedup, filter."""
    if combined.size == 0:
        return empty_triplets()
    r = combined["r"]
    q = combined["q"]
    length = combined["length"]
    le = common_suffix_len(reference, query, r, q)
    re = common_prefix_len(reference, query, r + length, q + length)
    full = make_triplets(r - le, q - le, length + le + re)
    full = full[full["length"] >= min_length]
    return unique_mems(full)


def host_merge(
    reference: np.ndarray,
    query: np.ndarray,
    out_tile_triplets: np.ndarray,
    min_length: int,
) -> np.ndarray:
    """The complete host stage: diagonal combine → re-extend → dedup/filter."""
    combined = combine_diagonal(out_tile_triplets)
    return finalize_mems(reference, query, combined, min_length)
