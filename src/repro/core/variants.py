"""Match-type variants: MUMs, rare matches, and both-strand extraction.

The paper's §V names these as future work ("variants of the maximal exact
match extraction problem such as unique and rare exact match extraction");
they are also the historical context (§I–II): MUMmer's original *maximal
unique match* requires the matched substring to occur exactly once in each
sequence [Delcher et al. 1999], and *rare* matches relax uniqueness to at
most ``k`` occurrences [Ohlebusch & Kurtz 2008].

All variants are post-filters over the (already verified-correct) MEM set:
a MEM's substring occurrence counts in ``R`` and ``Q`` are obtained with the
output-proportional suffix-array walk
:meth:`repro.index.matching.SuffixArraySearcher.count_occurrences`.

Strand handling follows the convention of the CPU tools' ``-b`` mode: the
reverse strand is matched by querying the reverse complement, and reported
triplets keep reverse-strand coordinates plus a helper to map them back to
forward-strand positions.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import as_codes
from repro.core.session import MemSession
from repro.errors import InvalidParameterError
from repro.index.matching import SuffixArraySearcher
from repro.sequence.alphabet import reverse_complement
from repro.types import MatchSet


def occurrence_counts(
    mems: MatchSet, reference: np.ndarray, query: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Occurrences of each MEM's substring in ``R`` and in ``Q``."""
    arr = mems.array
    ref_searcher = SuffixArraySearcher(reference)
    qry_searcher = SuffixArraySearcher(query)
    in_ref = ref_searcher.count_occurrences(arr["r"], arr["length"])
    in_qry = qry_searcher.count_occurrences(arr["q"], arr["length"])
    return in_ref, in_qry


def find_rare_mems(
    reference,
    query,
    min_length: int,
    *,
    max_ref_occurrences: int = 1,
    max_query_occurrences: int | None = None,
    **kwargs,
) -> MatchSet:
    """MEMs whose substring occurs at most ``k`` times in each sequence.

    ``max_ref_occurrences = max_query_occurrences = 1`` gives MUMs; larger
    bounds give Ohlebusch & Kurtz's rare matches. Counting is exact (full
    suffix arrays of both sequences), so this costs one extra index build
    per side on top of the MEM extraction.
    """
    if max_ref_occurrences < 1:
        raise InvalidParameterError(
            f"max_ref_occurrences must be >= 1, got {max_ref_occurrences}"
        )
    if max_query_occurrences is None:
        max_query_occurrences = max_ref_occurrences
    if max_query_occurrences < 1:
        raise InvalidParameterError(
            f"max_query_occurrences must be >= 1, got {max_query_occurrences}"
        )
    reference = as_codes(reference)
    query = as_codes(query)
    session = MemSession(reference, min_length=min_length, **kwargs)
    mems = session.find_mems(query)
    if len(mems) == 0:
        return mems
    in_ref, in_qry = occurrence_counts(mems, reference, query)
    keep = (in_ref <= max_ref_occurrences) & (in_qry <= max_query_occurrences)
    out = MatchSet(mems.array[keep], stats=session.stats.to_dict())
    out.stats["variant"] = (
        f"rare(max_ref={max_ref_occurrences}, max_query={max_query_occurrences})"
    )
    out.stats["n_mems_prefilter"] = len(mems)
    return out


def find_mums(reference, query, min_length: int, **kwargs) -> MatchSet:
    """Maximal unique matches: MEMs occurring exactly once in both sequences.

    This is MUMmer's original match type [Delcher et al. 1999]; the paper's
    §I notes MEMs are preferred exactly when MUMs are too few, and this
    function quantifies that (compare ``len(find_mums(...))`` with
    ``stats["n_mems_prefilter"]``).
    """
    out = find_rare_mems(
        reference, query, min_length,
        max_ref_occurrences=1, max_query_occurrences=1, **kwargs,
    )
    out.stats["variant"] = "mum"
    return out


class StrandedMems:
    """Both-strand extraction result.

    ``forward`` holds plain forward-strand MEMs. ``reverse`` holds MEMs of
    ``R`` versus ``reverse_complement(Q)`` in *reverse-strand coordinates*;
    :meth:`reverse_in_forward_coords` maps each to
    ``(r, q_forward_start, length)`` where ``q_forward_start`` is the
    leftmost forward-strand position covered by the match.
    """

    def __init__(self, forward: MatchSet, reverse: MatchSet, n_query: int):
        self.forward = forward
        self.reverse = reverse
        self.n_query = int(n_query)

    def reverse_in_forward_coords(self) -> list[tuple[int, int, int]]:
        """Reverse-strand matches as ``(r, forward-strand q start, length)``."""
        out = []
        for r, q_rc, length in self.reverse:
            out.append((r, self.n_query - q_rc - length, length))
        return out

    def total(self) -> int:
        """Matches across both strands."""
        return len(self.forward) + len(self.reverse)

    def __repr__(self) -> str:
        return f"StrandedMems(+{len(self.forward)}, -{len(self.reverse)})"


def find_mems_both_strands(reference, query, min_length: int, **kwargs) -> StrandedMems:
    """MEMs on both strands (the CPU tools' ``-b``/``-c`` behaviour).

    Both strands share one :class:`MemSession`: the reference's row indexes
    are built for the forward pass and reused verbatim for the
    reverse-complement pass (the index depends only on the reference).
    """
    query = as_codes(query)
    session = MemSession(reference, min_length=min_length, **kwargs)
    fwd = session.find_mems(query)
    rev = session.find_mems(reverse_complement(query))
    return StrandedMems(forward=fwd, reverse=rev, n_query=query.size)
