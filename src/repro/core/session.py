"""Reusable index sessions: build a reference's row indexes once, query forever.

copMEM's lesson (Grabowski & Bieniecki 2018) is that a lightweight sampled
k-mer index *amortized across queries* is the dominant cost lever for MEM
extraction — yet the seed code rebuilt every per-row index on every
``find_mems`` call. A :class:`MemSession` binds ``(reference, params)``
once, lazily caches the per-row seed indexes as the pipeline first touches
them, and then serves unlimited ``find_mems(query)`` calls at match-only
cost. Every many-query consumer — :class:`repro.core.mapping.ReadMapper`,
:func:`repro.core.distance.distance_matrix`, both-strand extraction, the
CLI's per-record mode — is built on top of it.

A small module-level LRU (:func:`get_session`) additionally shares
sessions *between* calls keyed by reference fingerprint + params, so even
API entry points that take raw sequences (``mem_distance``) amortize.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict

import numpy as np

from repro.analysis.lock_tracker import new_lock
from repro.core.executors import RowExecutor, make_executor
from repro.core.params import GpuMemParams
from repro.core.pipeline import Pipeline, PipelineStats, as_codes
from repro.index.kmer_index import KmerSeedIndex
from repro.obs.tracer import Tracer, get_tracer
from repro.types import MatchSet


class MemSession:
    """MEM extraction bound to one ``(reference, params)`` pair.

    The session is the pipeline's index cache: rows are built on first
    touch (or all at once via :meth:`warm`) and reused by every subsequent
    query, including reverse-complement strands and batch workloads.

    Example::

        session = MemSession(reference, min_length=20)
        session.warm()                      # optional: prebuild all rows
        for read in reads:
            mems = session.find_mems(read)  # match-only cost per read
    """

    def __init__(
        self,
        reference,
        params: GpuMemParams | None = None,
        /,
        *,
        executor: RowExecutor | str | None = None,
        tracer: Tracer | None = None,
        lock_factory=None,
        store=None,
        **kwargs,
    ):
        if isinstance(executor, str):
            # Route registry names through the params so they validate and
            # show up in ``describe()`` like any other knob.
            kwargs["executor"] = executor
            executor = None
        if params is None:
            params = GpuMemParams(**kwargs)
        elif kwargs:
            params = params.with_(**kwargs)
        self.params = params
        self.tracer = get_tracer(tracer)
        self.reference = as_codes(reference)
        #: Injectable lock factory (``name -> lock``); the default
        #: ``new_lock`` yields plain locks unless a runtime
        #: :class:`repro.analysis.lock_tracker.LockTracker` is installed.
        self._lock_factory = lock_factory or new_lock
        if executor is None:
            executor = make_executor(
                params.executor, params.workers, lock_factory=self._lock_factory
            )
        self.pipeline = Pipeline(params, executor=executor, tracer=self.tracer)
        #: Stats of the most recent :meth:`find_mems` run.
        self.stats = PipelineStats(
            backend=params.backend,
            executor=self.pipeline.executor.name,
            params=params.describe(),
        )
        #: The persistent tiered index store behind this session's cold
        #: path (:mod:`repro.index.store`): ``store=`` accepts an
        #: :class:`~repro.index.store.IndexStore`, a cache-dir path, or
        #: ``None`` — which resolves the ``REPRO_INDEX_STORE`` environment
        #: default (and stays ``None`` when that is unset).
        from repro.index.store import resolve_store

        self.store = resolve_store(store)
        self._fingerprint: str | None = None
        self._row_indexes: dict[int, KmerSeedIndex] = {}
        self._lock = self._lock_factory("session.cache")  # guards: _row_indexes, _build_locks, _hits, _misses, _n_queries
        #: Per-row single-flight build locks, created lazily under _lock
        #: and pruned by :meth:`drop_indexes` (one lock class: "session.build").
        self._build_locks: dict[int, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._n_queries = 0

    # -- index cache protocol (consumed by RowIndexStage) ----------------------
    def get(self, row: int) -> KmerSeedIndex | None:
        """Cache-protocol read: the row's index, or None if not yet built."""
        with self._lock:
            index = self._row_indexes.get(row)
            if index is None:
                self._misses += 1
            else:
                self._hits += 1
        return index

    def put(self, row: int, index: KmerSeedIndex) -> None:
        """Cache-protocol write: remember a freshly built row index."""
        with self._lock:
            self._row_indexes[row] = index

    def get_or_build(self, row: int, build) -> tuple[KmerSeedIndex, float, bool]:
        """Single-flight cache fill: ``(index, build_seconds, cache_hit)``.

        ``build`` is a zero-argument callable returning
        ``(KmerSeedIndex, seconds)``. Concurrent callers that miss the same
        row serialize on a per-row lock so exactly one of them builds; the
        others block briefly and are then served the cached index (counted
        as hits — only the one real build is a miss). This is what makes
        the session safe under the ``threads`` executor and under
        query-level concurrency (:class:`repro.core.batch.BatchRunner`).
        """
        with self._lock:
            index = self._row_indexes.get(row)
            if index is not None:
                self._hits += 1
                return index, 0.0, True
            row_lock = self._build_locks.setdefault(
                row, self._lock_factory("session.build")
            )
        with row_lock:
            # Re-check: a concurrent builder may have filled the row while
            # we waited on its lock.
            with self._lock:
                index = self._row_indexes.get(row)
                if index is not None:
                    self._hits += 1
                    return index, 0.0, True
            index, seconds = self._build_row(row, build)
            with self._lock:
                self._misses += 1
                self._row_indexes[row] = index
            return index, seconds, False

    def _build_row(self, row: int, build) -> tuple[KmerSeedIndex, float]:
        """The cold path of :meth:`get_or_build`: direct build, or the
        persistent store's tier walk when one is attached.

        With a store, a restarted process (or a sibling worker) that
        already persisted this row serves it as an mmap-backed warm load —
        near-zero seconds instead of a rebuild — and concurrent cold
        builders across processes single-flight on the store's file lock.
        Store loads keep the session-counter semantics of a build (the row
        was not in *this* session's memory); the ``index.store.*`` metrics
        carry the tier split.
        """
        if self.store is None:
            return build()
        ts = self.params.tile_size
        r0 = row * ts
        index, seconds, _source = self.store.get_or_build_row(
            self.fingerprint(),
            seed_length=self.params.seed_length,
            step=self.params.step,
            region_start=r0,
            region_end=min(r0 + ts, int(self.reference.size)),
            build=build,
            tracer=self.tracer,
        )
        return index, seconds

    def fingerprint(self) -> str:
        """Content hash of the bound reference (store / procpool key)."""
        if self._fingerprint is None:
            # Benign race: concurrent first callers compute the same value.
            self._fingerprint = reference_fingerprint(self.reference)
        return self._fingerprint

    # -- geometry --------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Tile rows of the reference (query-independent)."""
        ts = self.params.tile_size
        return -(-self.reference.size // ts) if self.reference.size else 0

    def row_index(self, row: int) -> KmerSeedIndex:
        """The (cached) partial seed index of one tile row."""
        plan = self.pipeline.plan_for(self.reference.size, self.params.tile_size)
        index, _, _ = self.pipeline.row_index.run(
            self.reference, plan, row, cache=self
        )
        return index

    # -- lifecycle -------------------------------------------------------------
    def warm(self) -> float:
        """Build every missing row index now; returns the build seconds.

        On a fresh session this is exactly the paper's Table III quantity
        (index construction without matching); on a warm session it is ~0.
        """
        with self.tracer.span(
            "session.warm", cat="session", n_rows=self.n_rows
        ):
            return self.pipeline.build_row_indexes(self.reference, cache=self)

    def drop_indexes(self) -> None:
        """Release all cached row indexes (memory pressure valve).

        Safe to call while queries are in flight: the swap happens under
        the cache lock, so concurrent row builds either land before the
        drop (and are released) or after it (and repopulate the cache).

        The per-row build locks are pruned along with the indexes they
        single-flight — without this they accumulated one Lock per row
        ever touched for the lifetime of the session. A lock currently
        held by an in-flight builder is kept (its waiters still
        serialize on it); a freshly dropped row simply grows a new one
        on next touch, and the worst case around a drop is one extra
        rebuild of that row, never a wrong result.
        """
        with self._lock:
            self._row_indexes = {}
            self._build_locks = {
                row: lock for row, lock in self._build_locks.items()
                if lock.locked()
            }

    def cache_info(self) -> dict:
        """Cache effectiveness counters and resident footprint.

        Counters and the resident-index list are snapshotted under the
        cache lock, so this is safe to call while the threads executor (or
        a :class:`~repro.core.batch.BatchRunner`) is mutating the cache.
        """
        with self._lock:
            indexes = list(self._row_indexes.values())
            hits, misses = self._hits, self._misses
            n_queries = self._n_queries
        return {
            "n_rows": self.n_rows,
            "n_cached": len(indexes),
            "hits": hits,
            "misses": misses,
            "n_queries": n_queries,
            "nbytes_packed": sum(ix.nbytes_packed for ix in indexes),
        }

    # -- extraction ------------------------------------------------------------
    def find_mems(self, query) -> MatchSet:
        """All MEMs of ``query`` against the bound reference."""
        query = as_codes(query)
        with self._lock:
            self._n_queries += 1
        with self.tracer.span(
            "session.find_mems", cat="session", n_query=int(query.size)
        ):
            if self.params.backend == "simulated":
                from repro.core.simulated import simulated_find_mems

                mems, stats = simulated_find_mems(
                    self.reference, query, self.params, tracer=self.tracer
                )
                self.stats = PipelineStats.from_dict(stats)
            else:
                mems, self.stats = self.pipeline.run(
                    self.reference, query, index_cache=self
                )
        self._publish_cache_stats(self.stats)
        return MatchSet(mems, stats=self.stats)

    def _publish_cache_stats(self, stats: PipelineStats) -> None:
        """Surface the cumulative row-index cache counters (satellite: the
        ``core/session.py`` LRU counters were invisible outside
        ``cache_info()``) through PipelineStats and the metrics registry."""
        with self._lock:
            hits, misses = self._hits, self._misses
        stats.session_cache_hits = hits
        stats.session_cache_misses = misses
        metrics = self.tracer.metrics
        if metrics.enabled:
            info = self.cache_info()
            metrics.counter("session.cache.queries").inc()
            metrics.gauge("session.cache.hits").set(hits)
            metrics.gauge("session.cache.misses").set(misses)
            metrics.gauge("session.cache.rows_cached").set(info["n_cached"])
            metrics.gauge("session.cache.resident_bytes").set(
                info["nbytes_packed"]
            )

    def find_mems_batch(self, queries) -> list[MatchSet]:
        """Extract against many queries, reusing the cached indexes."""
        return [self.find_mems(query) for query in queries]

    def __repr__(self) -> str:
        with self._lock:
            n_cached = len(self._row_indexes)
        return (
            f"MemSession(|R|={self.reference.size}, "
            f"rows={n_cached}/{self.n_rows} cached, "
            f"executor={self.pipeline.executor.name!r})"
        )


# -- shared session cache ------------------------------------------------------

#: Most sessions a process keeps warm at once via :func:`get_session`.
SESSION_CACHE_SIZE = 8

_session_cache: OrderedDict[tuple, MemSession] = OrderedDict()
_session_cache_lock = threading.Lock()  # guards: _session_cache, _lru_hits, _lru_misses
#: Cumulative process-wide LRU effectiveness (see :func:`session_cache_info`).
_lru_hits = 0
_lru_misses = 0


def reference_fingerprint(codes: np.ndarray) -> str:
    """Stable content hash of a code array (session cache key component)."""
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    return hashlib.sha1(codes.tobytes()).hexdigest()


def get_session(
    reference, params: GpuMemParams | None = None, /, *,
    tracer: Tracer | None = None, store=None, **kwargs
) -> MemSession:
    """A shared :class:`MemSession` for ``(reference, params)``.

    Sessions are cached in a small process-wide LRU keyed by the reference
    content hash and the (hashable, frozen) params, so repeated calls with
    the same sequence — e.g. ``mem_distance`` in both directions, or many
    ``find_rare_mems`` calls against one genome — reuse the same indexes.
    ``tracer`` instruments a freshly built session (an LRU hit keeps the
    session's original tracer) and records the LRU hit/miss either way.

    ``store`` (an :class:`~repro.index.store.IndexStore`, a cache-dir
    path, or ``None`` for the ``REPRO_INDEX_STORE`` default) is part of
    the LRU key: the same reference bound to different stores yields
    distinct sessions, and a fresh session falls back to the store's
    warm tier instead of rebuilding rows the last process already paid
    for.
    """
    global _lru_hits, _lru_misses
    if params is None:
        params = GpuMemParams(**kwargs)
    elif kwargs:
        params = params.with_(**kwargs)
    from repro.index.store import resolve_store

    resolved_store = resolve_store(store)
    codes = as_codes(reference)
    key = (
        reference_fingerprint(codes),
        codes.size,
        params,
        None if resolved_store is None else str(resolved_store.cache_dir),
    )
    with _session_cache_lock:
        session = _session_cache.get(key)
        if session is not None:
            _session_cache.move_to_end(key)
            _lru_hits += 1
            get_tracer(tracer).metrics.counter("session.lru.hits").inc()
            return session
        _lru_misses += 1
    get_tracer(tracer).metrics.counter("session.lru.misses").inc()
    session = MemSession(codes, params, tracer=tracer, store=resolved_store)
    with _session_cache_lock:
        _session_cache[key] = session
        while len(_session_cache) > SESSION_CACHE_SIZE:
            _session_cache.popitem(last=False)
    return session


def clear_session_cache() -> None:
    """Drop every shared session (tests / memory pressure)."""
    with _session_cache_lock:
        _session_cache.clear()


def session_cache_info() -> dict:
    """Introspection for the shared session LRU."""
    with _session_cache_lock:
        return {
            "n_sessions": len(_session_cache),
            "capacity": SESSION_CACHE_SIZE,
            "hits": _lru_hits,
            "misses": _lru_misses,
        }


def time_warm(session: MemSession) -> float:
    """Time :meth:`MemSession.warm` by wall clock (bench helper)."""
    t0 = time.perf_counter()
    session.warm()
    return time.perf_counter() - t0
