"""The staged GPUMEM extraction pipeline (paper Figure 1, made explicit).

The dataflow — per-row seed index → per-tile match → host merge — used to
be re-implemented as near-identical inline loops in the matcher, the
index-only timer, and the multi-device path. This module is the single
implementation, decomposed into four stage objects composed by a
:class:`Pipeline`:

- :class:`PrepStage` — query-side preparation (k-mer codes);
- :class:`RowIndexStage` — the per-row partial seed index, optionally
  served from a cache (see :class:`repro.core.session.MemSession`);
- :class:`TileMatchStage` — candidate generation + maximal extension +
  in/out-tile split for every tile of a row;
- :class:`HostMergeStage` — the global out-tile merge (§III-C2).

Rows are independent work units; *how* they run is delegated to a
:class:`repro.core.executors.RowExecutor` (serial, thread pool, or banded
multi-device model). All per-run bookkeeping lives in the typed
:class:`PipelineStats`, which also behaves as a read/write mapping so the
historical ``stats["key"]`` consumers keep working unchanged.

Observability: pass ``tracer=`` (a :class:`repro.obs.Tracer`) to record
``stage:prep`` / ``stage:row_index`` / ``stage:tile_match`` /
``stage:host_merge`` spans plus per-stage counters into
``tracer.metrics`` (see ``docs/observability.md``). Without a tracer the
instrumentation degrades to shared no-op objects.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Iterator

import numpy as np

from repro.core.executors import RowExecutor, SerialExecutor
from repro.core.host_merge import host_merge
from repro.core.params import GpuMemParams
from repro.core.tiling import TilePlan
from repro.core.vectorized import stage_tile
from repro.index.kmer_index import KmerSeedIndex, build_kmer_index
from repro.obs.tracer import Tracer, get_tracer
from repro.sequence.alphabet import encode
from repro.sequence.packed import PackedSequence, kmer_codes
from repro.types import concat_triplets


def as_codes(seq) -> np.ndarray:
    """Coerce a string / PackedSequence / array into uint8 code form."""
    if isinstance(seq, PackedSequence):
        return seq.codes()
    return encode(seq)


def _cache_token(index_cache) -> int | None:
    """A stable per-parent-session token for process-tier worker caches.

    Worker-side sessions are keyed by it (see
    :class:`repro.core.procpool.RowTaskSpec`), so each parent session gets
    its own worker caches and a fresh session's first query reports real
    misses rather than inheriting another session's warmth.
    """
    if index_cache is None:
        return None
    token = getattr(index_cache, "_proc_token", None)
    if token is None:
        from repro.core import procpool

        token = procpool.next_session_token()
        try:
            index_cache._proc_token = token
        except AttributeError:  # slotted custom cache: fall back to identity
            token = id(index_cache)
    return token


@dataclass
class PipelineStats:
    """Typed per-run statistics of one pipeline execution.

    Replaces the ad-hoc stats dicts the matcher, index timer, and
    multi-device path each used to assemble. Field names intentionally
    match the historical dict keys, and the class implements the mapping
    protocol (``stats["index_time"]``, ``dict(stats)``, ``stats.update``)
    so existing consumers — CLI, benchmarks, tests — read it unchanged.
    Keys with no typed field (``sim_*`` of the simulated backend, band
    details of the banded executor, variant tags, …) live in :attr:`extra`.
    """

    backend: str = "vectorized"
    executor: str = "serial"
    n_rows: int = 0
    n_cols: int = 0
    n_tiles: int = 0
    n_candidates: int = 0
    n_in_tile: int = 0
    n_out_tile_fragments: int = 0
    n_crossing_mems: int = 0
    prep_time: float = 0.0
    index_time: float = 0.0
    match_time: float = 0.0
    host_merge_time: float = 0.0
    total_time: float = 0.0
    max_index_bytes: int = 0
    max_index_locs: int = 0
    index_cache_hits: int = 0
    index_cache_misses: int = 0
    #: Cumulative row-index cache effectiveness of the serving
    #: :class:`~repro.core.session.MemSession` (across its whole lifetime,
    #: unlike the per-run ``index_cache_*`` pair above).
    session_cache_hits: int = 0
    session_cache_misses: int = 0
    params: str = ""
    extra: dict = field(default_factory=dict)

    # -- mapping protocol ----------------------------------------------------
    def __getitem__(self, key: str):
        if key in self._field_names():
            return getattr(self, key)
        return self.extra[key]

    def __setitem__(self, key: str, value) -> None:
        if key in self._field_names():
            setattr(self, key, value)
        else:
            self.extra[key] = value

    def __contains__(self, key) -> bool:
        return key in self._field_names() or key in self.extra

    def __iter__(self) -> Iterator[str]:
        yield from self._field_names()
        yield from self.extra

    def __len__(self) -> int:
        return len(self._field_names()) + len(self.extra)

    def keys(self):
        """All stat names: typed fields first, then extras."""
        return list(self)

    def items(self):
        """``(name, value)`` pairs over fields and extras."""
        return [(key, self[key]) for key in self]

    def get(self, key, default=None):
        """Mapping-style lookup with a default."""
        try:
            return self[key]
        except KeyError:
            return default

    def update(self, other=(), **kwargs) -> None:
        """Merge a mapping/pairs into the stats (dict.update semantics)."""
        items = other.items() if hasattr(other, "items") else other
        for key, value in items:
            self[key] = value
        for key, value in kwargs.items():
            self[key] = value

    def to_dict(self) -> dict:
        """Flatten into a plain dict (typed fields + extras)."""
        return {key: self[key] for key in self}

    @classmethod
    def from_dict(cls, mapping: dict) -> "PipelineStats":
        """Lift a legacy stats dict; unknown keys land in :attr:`extra`."""
        out = cls()
        out.update(mapping)
        return out

    @classmethod
    def _field_names(cls) -> tuple[str, ...]:
        names = getattr(cls, "_field_names_cache", None)
        if names is None:
            names = tuple(f.name for f in fields(cls) if f.name != "extra")
            cls._field_names_cache = names
        return names


@dataclass
class RowResult:
    """Everything one tile row produced, plus its measured cost."""

    row: int
    in_tile: np.ndarray
    out_tile: np.ndarray
    n_candidates: int = 0
    index_seconds: float = 0.0
    match_seconds: float = 0.0
    index_bytes: int = 0
    index_locs: int = 0
    cache_hit: bool = False

    @property
    def n_in_tile(self) -> int:
        return int(self.in_tile.size)

    @property
    def n_out_tile(self) -> int:
        return int(self.out_tile.size)


class PrepStage:
    """Query-side preparation: rolling k-mer codes of the whole query."""

    def __init__(self, seed_length: int):
        self.seed_length = int(seed_length)

    def run(self, query: np.ndarray) -> np.ndarray:
        if query.size < self.seed_length:
            return np.empty(0, dtype=np.int64)
        return kmer_codes(query, self.seed_length)


class RowIndexStage:
    """Build (or fetch from a cache) one tile row's partial seed index.

    The cache is any object with ``get(row) -> KmerSeedIndex | None`` and
    ``put(row, index)`` — in practice a :class:`MemSession`. Row indexes
    depend only on the reference and the params, never on the query, which
    is exactly what makes them reusable across a many-query workload.
    """

    def __init__(self, params: GpuMemParams):
        self.params = params

    def run(
        self,
        reference: np.ndarray,
        plan: TilePlan,
        row: int,
        cache=None,
    ) -> tuple[KmerSeedIndex, float, bool]:
        def build() -> tuple[KmerSeedIndex, float]:
            r0, r1 = plan.row_range(row)
            t0 = time.perf_counter()
            index = build_kmer_index(
                reference,
                seed_length=self.params.seed_length,
                step=self.params.step,
                region_start=r0,
                region_end=r1,
            )
            return index, time.perf_counter() - t0

        if cache is None:
            index, seconds = build()
            return index, seconds, False
        # Prefer the single-flight protocol (MemSession.get_or_build): under
        # the threads executor / BatchRunner, concurrent misses on one row
        # must produce exactly one build. Plain get/put caches remain
        # supported for simple (serial) callers.
        get_or_build = getattr(cache, "get_or_build", None)
        if get_or_build is not None:
            return get_or_build(row, build)
        cached = cache.get(row)
        if cached is not None:
            return cached, 0.0, True
        index, seconds = build()
        cache.put(row, index)
        return index, seconds, False


class TileMatchStage:
    """Candidates → extension → in/out split for every tile of one row.

    With a real tracer attached, the stage also feeds the Algorithm-2
    load-balance counters: every query seed position is one thread slot,
    zero-hit slots are the idle threads ``T_idle``, and — when
    ``params.load_balancing`` is on — idle slots of a tile that has at
    least one active seed count as redistributed (the host-side view of
    the paper's proactive balancing, aggregated per tile).
    """

    def __init__(self, params: GpuMemParams, *, tracer: Tracer | None = None):
        self.params = params
        self.tracer = get_tracer(tracer)

    def run(
        self,
        reference: np.ndarray,
        query: np.ndarray,
        query_kmers: np.ndarray,
        plan: TilePlan,
        row: int,
        index: KmerSeedIndex,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        in_parts: list[np.ndarray] = []
        out_parts: list[np.ndarray] = []
        n_candidates = 0
        metrics = self.tracer.metrics
        slots = active = idle = redistributed = 0
        for tile in plan.tiles_in_row(row):
            result = stage_tile(
                reference, query, query_kmers, tile, index, self.params.min_length
            )
            n_candidates += result.n_candidates
            if result.in_tile.size:
                in_parts.append(result.in_tile)
            if result.out_tile.size:
                out_parts.append(result.out_tile)
            if metrics.enabled:
                n_slots = int(result.hit_counts.size)
                n_active = int(result.n_query_seeds_with_hits)
                slots += n_slots
                active += n_active
                idle += n_slots - n_active
                if self.params.load_balancing and n_active:
                    redistributed += n_slots - n_active
        if metrics.enabled:
            metrics.counter("load_balance.seed_slots").inc(slots)
            metrics.counter("load_balance.active_seeds").inc(active)
            metrics.counter("load_balance.idle_threads").inc(idle)
            metrics.counter("load_balance.redistributed_threads").inc(redistributed)
        return concat_triplets(in_parts), concat_triplets(out_parts), n_candidates


class HostMergeStage:
    """Global merge of boundary-touching fragments (§III-C2)."""

    def __init__(self, params: GpuMemParams):
        self.params = params

    def run(
        self,
        reference: np.ndarray,
        query: np.ndarray,
        row_results: list[RowResult],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        t0 = time.perf_counter()
        out_tile = concat_triplets([r.out_tile for r in row_results])
        crossing = host_merge(reference, query, out_tile, self.params.min_length)
        mems = concat_triplets([r.in_tile for r in row_results] + [crossing])
        seconds = time.perf_counter() - t0
        return mems, crossing, out_tile, seconds


class Pipeline:
    """Stage composition + row executor = one extraction engine.

    ``run`` is the single implementation of the Figure-1 dataflow; the
    matcher, the session, and the multi-device wrapper all call into it
    with different executors / caches rather than re-growing their own
    loops.
    """

    def __init__(
        self,
        params: GpuMemParams,
        *,
        executor: RowExecutor | None = None,
        prep: PrepStage | None = None,
        row_index: RowIndexStage | None = None,
        tile_match: TileMatchStage | None = None,
        merge: HostMergeStage | None = None,
        tracer: Tracer | None = None,
    ):
        self.params = params
        self.tracer = get_tracer(tracer)
        self.executor = executor if executor is not None else SerialExecutor()
        # The executor and the tile stage carry the pipeline's tracer so
        # band timings and load-balance counters land in the same run.
        self.executor.tracer = self.tracer
        self.prep = prep or PrepStage(params.seed_length)
        self.row_index = row_index or RowIndexStage(params)
        self.tile_match = tile_match or TileMatchStage(params, tracer=self.tracer)
        self.tile_match.tracer = self.tracer
        self.merge = merge or HostMergeStage(params)

    def plan_for(self, n_reference: int, n_query: int) -> TilePlan:
        """The tile grid for one problem at this pipeline's tile size."""
        return TilePlan(
            n_reference=n_reference,
            n_query=n_query,
            tile_size=self.params.tile_size,
        )

    def process_row(
        self,
        reference: np.ndarray,
        query: np.ndarray,
        query_kmers: np.ndarray,
        plan: TilePlan,
        row: int,
        cache=None,
    ) -> RowResult:
        """One independent work unit: index + match all tiles of ``row``."""
        tracer = self.tracer
        with tracer.span("stage:row_index", cat="pipeline", row=row) as sp:
            index, index_seconds, cache_hit = self.row_index.run(
                reference, plan, row, cache=cache
            )
            sp.set(cache_hit=cache_hit, index_locs=index.n_locs)
        t0 = time.perf_counter()
        with tracer.span("stage:tile_match", cat="pipeline", row=row) as sp:
            in_tile, out_tile, n_candidates = self.tile_match.run(
                reference, query, query_kmers, plan, row, index
            )
            sp.set(n_candidates=n_candidates, n_in_tile=int(in_tile.size))
        return RowResult(
            row=row,
            in_tile=in_tile,
            out_tile=out_tile,
            n_candidates=n_candidates,
            index_seconds=index_seconds,
            match_seconds=time.perf_counter() - t0,
            index_bytes=index.nbytes_packed,
            index_locs=index.n_locs,
            cache_hit=cache_hit,
        )

    def run(
        self,
        reference: np.ndarray,
        query: np.ndarray,
        *,
        index_cache=None,
        query_kmers: np.ndarray | None = None,
    ) -> tuple[np.ndarray, PipelineStats]:
        """Extract all MEMs; returns ``(triplets, stats)``.

        ``index_cache`` (a :class:`MemSession`-like object) short-circuits
        the row-index stage; ``query_kmers`` short-circuits the prep stage
        when the caller already holds the rolling codes.
        """
        run_t0 = time.perf_counter()
        tracer = self.tracer
        plan = self.plan_for(reference.size, query.size)
        with tracer.span(
            "pipeline.run", cat="pipeline",
            backend=self.params.backend, executor=self.executor.name,
            n_rows=plan.n_rows, n_reference=int(reference.size),
            n_query=int(query.size),
        ) as run_span:
            t0 = time.perf_counter()
            with tracer.span("stage:prep", cat="pipeline") as sp:
                if query_kmers is None:
                    query_kmers = self.prep.run(query)
                sp.set(n_kmers=int(query_kmers.size))
            prep_time = time.perf_counter() - t0

            if getattr(self.executor, "needs_spec", False):
                row_results = self._run_specs(
                    reference, query, plan, index_cache
                )
            else:

                def row_fn(row: int) -> RowResult:
                    return self.process_row(
                        reference, query, query_kmers, plan, row,
                        cache=index_cache,
                    )

                row_results = self.executor.map_rows(
                    row_fn, range(plan.n_rows)
                )

            with tracer.span("stage:host_merge", cat="pipeline") as sp:
                mems, crossing, out_tile, merge_seconds = self.merge.run(
                    reference, query, row_results
                )
                sp.set(
                    n_out_tile_fragments=int(out_tile.size),
                    n_crossing_mems=int(crossing.size),
                )
            run_span.set(n_mems=int(mems.size))

        stats = PipelineStats(
            backend=self.params.backend,
            executor=self.executor.name,
            n_rows=plan.n_rows,
            n_cols=plan.n_cols,
            n_tiles=plan.n_tiles,
            n_candidates=sum(r.n_candidates for r in row_results),
            n_in_tile=sum(r.n_in_tile for r in row_results),
            n_out_tile_fragments=int(out_tile.size),
            n_crossing_mems=int(crossing.size),
            prep_time=prep_time,
            index_time=sum(r.index_seconds for r in row_results),
            match_time=sum(r.match_seconds for r in row_results),
            host_merge_time=merge_seconds,
            total_time=time.perf_counter() - run_t0,
            max_index_bytes=max((r.index_bytes for r in row_results), default=0),
            max_index_locs=max((r.index_locs for r in row_results), default=0),
            index_cache_hits=sum(1 for r in row_results if r.cache_hit),
            index_cache_misses=sum(1 for r in row_results if not r.cache_hit),
            params=self.params.describe(),
        )
        self.executor.annotate(stats)
        self._record_metrics(stats, n_mems=int(mems.size))
        return mems, stats

    def _run_specs(
        self, reference: np.ndarray, query: np.ndarray, plan, index_cache
    ) -> list[RowResult]:
        """Dispatch rows to a spec-based (process) executor.

        The closure-based path cannot cross a process boundary, so the work
        travels as a picklable :class:`repro.core.procpool.RowTaskSpec`.
        When the caller's cache is already fully warm, the spec says so:
        workers then warm their own sessions up front and report the same
        all-hit / zero-index-time stats a warm serial session does.
        """
        from repro.core import procpool

        assume_warm = False
        if index_cache is not None:
            cache_info = getattr(index_cache, "cache_info", None)
            if cache_info is not None:
                info = cache_info()
                assume_warm = 0 < info["n_rows"] <= info["n_cached"]
        spec = procpool.make_spec(
            reference,
            self.params,
            query=query,
            use_cache=index_cache is not None,
            assume_warm=assume_warm,
            token=_cache_token(index_cache),
            tracer=self.tracer,
            store=getattr(index_cache, "store", None),
        )
        return self.executor.map_row_specs(spec, range(plan.n_rows))

    def _record_metrics(self, stats: PipelineStats, *, n_mems: int) -> None:
        """Fold one run's stats into the tracer's metrics registry."""
        metrics = self.tracer.metrics
        if not metrics.enabled:
            return
        backend = self.params.backend
        metrics.counter("pipeline.runs", backend=backend).inc()
        metrics.counter("pipeline.mems", backend=backend).inc(n_mems)
        metrics.counter("stage.candidates", stage="tile_match").inc(
            stats.n_candidates
        )
        metrics.counter("stage.mems", stage="tile_match").inc(stats.n_in_tile)
        metrics.counter("stage.fragments", stage="host_merge").inc(
            stats.n_out_tile_fragments
        )
        metrics.counter("stage.mems", stage="host_merge").inc(
            stats.n_crossing_mems
        )
        metrics.counter("index.cache.hits").inc(stats.index_cache_hits)
        metrics.counter("index.cache.misses").inc(stats.index_cache_misses)
        for stage, seconds in (
            ("prep", stats.prep_time),
            ("row_index", stats.index_time),
            ("tile_match", stats.match_time),
            ("host_merge", stats.host_merge_time),
        ):
            metrics.histogram("stage.seconds", stage=stage).observe(seconds)
        metrics.histogram("pipeline.total_seconds").observe(stats.total_time)

    def build_row_indexes(self, reference: np.ndarray, cache=None) -> float:
        """Run only the row-index stage for every row; returns build seconds.

        This is the paper's Table III quantity (index construction without
        matching) and the session's warm-up path.
        """
        plan = self.plan_for(reference.size, self.params.tile_size)
        tracer = self.tracer

        if getattr(self.executor, "needs_spec", False):
            with tracer.span(
                "pipeline.build_row_indexes", cat="pipeline",
                n_rows=plan.n_rows,
            ):
                return self._build_specs(reference, plan, cache)

        def row_fn(row: int) -> float:
            with tracer.span("stage:row_index", cat="pipeline", row=row) as sp:
                _, seconds, cache_hit = self.row_index.run(
                    reference, plan, row, cache=cache
                )
                sp.set(cache_hit=cache_hit)
            return seconds

        with tracer.span(
            "pipeline.build_row_indexes", cat="pipeline", n_rows=plan.n_rows
        ):
            return float(
                sum(self.executor.map_rows(row_fn, range(plan.n_rows)))
            )

    def _build_specs(self, reference: np.ndarray, plan, cache) -> float:
        """Spec-based (process) warm path: build in workers, fill ``cache``.

        Rows the caller's cache already holds are skipped (counted as hits
        by the cache itself, matching the serial ``get_or_build`` path);
        freshly built indexes are written back so the *caller's* cache ends
        fully warm, not just the workers' — ``MemSession.warm()`` promises
        ``cache_info()["n_cached"] == n_rows`` afterwards.
        """
        from repro.core import procpool

        if cache is None:
            missing = list(range(plan.n_rows))
        else:
            missing = [
                row for row in range(plan.n_rows) if cache.get(row) is None
            ]
        spec = procpool.make_spec(
            reference, self.params, use_cache=True,
            token=_cache_token(cache), tracer=self.tracer,
            store=getattr(cache, "store", None),
        )
        total = 0.0
        for row, index, seconds in self.executor.build_row_specs(spec, missing):
            if cache is not None:
                cache.put(row, index)
            total += seconds
        return float(total)
