"""Tile-level combining of out-block triplets (paper §III-C1).

The out-block triplets of one tile's blocks are sorted by ``r − q`` (ties on
``q``), combined along diagonals, re-expanded to maximality within the tile
box, and split into *in-tile* MEMs (final — moved to the host for
reporting) and *out-tile* triplets (appended to the global list merged at
the very end, §III-C2).

The sort/combine here is vectorized with an analytic device-cost charge
(the paper assigns a parallel sort plus one thread per block strip; we
charge ``n log n`` sort work and per-triplet combine/expansion work), since
thread-level simulation of a library sort adds nothing to fidelity.

The re-expansion step exists because a block can miss a fragment of a
crossing MEM entirely (no aligned sampled seed inside that strip); see
DESIGN.md §5 note 2 — the same argument as the host stage, one level down.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.host_merge import combine_diagonal
from repro.core.tiling import Tile
from repro.index.compare import common_prefix_len, common_suffix_len
from repro.types import empty_triplets, make_triplets


def expand_triplets_in_box(
    reference: np.ndarray,
    query: np.ndarray,
    triplets: np.ndarray,
    tile: Tile,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Maximal extension of triplets, precise-touching split at the tile box.

    Returns ``(final_inside, touching, char_ops)`` where ``final_inside``
    are mismatch-delimited strictly inside the box (true MEMs of any
    length — caller filters by L) and ``touching`` are clipped at the box.
    """
    if triplets.size == 0:
        return empty_triplets(), empty_triplets(), 0
    r = triplets["r"]
    q = triplets["q"]
    lam = triplets["length"]

    dl = np.minimum(r - tile.r_start, q - tile.q_start)
    le = common_suffix_len(reference, query, r, q)
    touch_left = le > dl
    le_c = np.minimum(le, dl)

    cap = np.minimum(tile.r_end - r, tile.q_end - q) - lam
    re = common_prefix_len(reference, query, r + lam, q + lam)
    touch_right = re > cap
    re_c = np.minimum(re, np.maximum(cap, 0))

    ops = int(le.sum() + re.sum()) + 2 * r.size
    out = make_triplets(r - le_c, q - le_c, lam + le_c + re_c)
    touching = touch_left | touch_right
    inside = out[~touching]
    if inside.size:
        inside = np.unique(inside)
    boundary = out[touching]
    if boundary.size:
        boundary = np.unique(boundary)
    return inside, boundary, ops


def tile_combine(
    reference: np.ndarray,
    query: np.ndarray,
    tile: Tile,
    out_block: np.ndarray,
    min_length: int,
    device=None,
) -> tuple[np.ndarray, np.ndarray]:
    """§III-C1 for one tile: sort+combine, re-expand, split in/out-tile."""
    if out_block.size == 0:
        return empty_triplets(), empty_triplets()
    combined = combine_diagonal(out_block)
    inside, touching, ops = expand_triplets_in_box(reference, query, combined, tile)
    in_tile = inside[inside["length"] >= min_length]
    if device is not None:
        from repro.gpu.primitives import _charge_primitive

        n = int(out_block.size)
        sort_work = n * max(1.0, math.log2(max(n, 2)))
        _charge_primitive(
            device,
            "tile:combine",
            work=sort_work + ops,
            depth=max(1.0, math.log2(max(n, 2))),
        )
    return in_tile, touching
