"""Pluggable executors over independent pipeline rows.

A tile *row* is the pipeline's unit of independent work: given the
(read-only) sequences, each row builds/fetches its own partial seed index
and matches its own tiles, and rows only meet again at the host merge
(paper §III, Figure 1). Executors decide *how* the independent rows run:

- :class:`SerialExecutor` — one row at a time, in order (the seed
  behaviour; also the baseline every other executor is tested against);
- :class:`ThreadPoolRowExecutor` — rows on a ``ThreadPoolExecutor``. The
  hot kernels are whole-array NumPy calls that release the GIL, so rows
  genuinely overlap;
- :class:`BandedExecutor` — contiguous row bands processed one band at a
  time with per-band timing, modelling ``D`` devices each owning a band
  (cf. SALoBa's workload-balance-aware scheduling of independent GPU work
  units). :mod:`repro.core.multi_device` is a thin wrapper over this;
- :class:`ProcessPoolRowExecutor` — row bands on a pool of worker
  *processes* (true multi-core; breaks the GIL wall). Work crosses the
  process boundary as a picklable :class:`repro.core.procpool.RowTaskSpec`
  rather than a closure, so this executor sets ``needs_spec`` and the
  pipeline dispatches through :meth:`~ProcessPoolRowExecutor.map_row_specs`.

Executors are deliberately ignorant of what a "row" computes — they map a
callable over row ids and hand back results in row order, so the same
executors serve extraction, index-only builds, and any future stage.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.lock_tracker import new_lock
from repro.errors import InvalidParameterError
from repro.obs.shipping import merge_payload
from repro.obs.tracer import NULL_TRACER

#: Names accepted by :func:`make_executor` (and ``GpuMemParams.executor``).
EXECUTOR_NAMES = ("serial", "threads", "banded", "process")


def partition_rows(n_rows: int, n_devices: int) -> list[list[int]]:
    """Contiguous near-equal bands of tile rows, one per device."""
    if n_devices < 1:
        raise InvalidParameterError(f"n_devices must be >= 1, got {n_devices}")
    bounds = np.linspace(0, n_rows, n_devices + 1).astype(int)
    return [list(range(bounds[d], bounds[d + 1])) for d in range(n_devices)]


@dataclass
class DeviceShare:
    """One device's (band's) slice of the work and its measured cost."""

    device_id: int
    rows: list[int]
    seconds: float = 0.0
    n_in_tile: int = 0
    n_out_tile: int = 0


class RowExecutor:
    """Interface: map a row function over row ids, results in row order."""

    #: Registry name; also recorded into ``PipelineStats.executor``.
    name = "abstract"

    #: Observability hook; the owning :class:`~repro.core.pipeline.Pipeline`
    #: replaces this with its own tracer so executor spans join the run.
    tracer = NULL_TRACER

    #: True when rows must be dispatched as a picklable
    #: :class:`repro.core.procpool.RowTaskSpec` (``map_row_specs`` /
    #: ``build_row_specs``) because a closure cannot cross the boundary.
    needs_spec = False

    def map_rows(self, fn: Callable[[int], object], rows: Sequence[int]) -> list:
        raise NotImplementedError

    def annotate(self, stats) -> None:
        """Merge executor-specific details into a stats mapping (optional)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SerialExecutor(RowExecutor):
    """Rows one after another — the reference behaviour."""

    name = "serial"

    def map_rows(self, fn, rows):
        rows = list(rows)
        with self.tracer.span(
            "executor:serial", cat="executor", n_rows=len(rows)
        ):
            return [fn(row) for row in rows]


class ThreadPoolRowExecutor(RowExecutor):
    """Rows on a thread pool (NumPy kernels release the GIL)."""

    name = "threads"

    def __init__(self, workers: int | None = None, lock_factory=None):
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers) if workers else min(8, os.cpu_count() or 1)
        self._lock = (lock_factory or new_lock)("executor.stats")  # guards: _n_rows_done
        self._n_rows_done = 0

    def map_rows(self, fn, rows):
        rows = list(rows)

        def run_one(row):
            result = fn(row)
            with self._lock:
                self._n_rows_done += 1
            return result

        with self.tracer.span(
            "executor:threads", cat="executor",
            n_rows=len(rows), workers=self.workers,
        ):
            if self.workers == 1 or len(rows) <= 1:
                return [run_one(row) for row in rows]
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(rows))
            ) as pool:
                return list(pool.map(run_one, rows))

    def annotate(self, stats) -> None:
        stats["workers"] = self.workers
        with self._lock:
            stats["rows_completed"] = self._n_rows_done

    def __repr__(self) -> str:
        return f"ThreadPoolRowExecutor(workers={self.workers})"


class BandedExecutor(RowExecutor):
    """Contiguous row bands with per-band timing (multi-device model).

    Bands run sequentially and each band's wall time is recorded in a
    :class:`DeviceShare`, so callers can report the deterministic
    ideal-parallel time ``max(band seconds) + merge`` (DESIGN.md §2)
    without any actual device concurrency.
    """

    name = "banded"

    def __init__(self, n_bands: int = 2):
        if n_bands < 1:
            raise InvalidParameterError(f"n_bands must be >= 1, got {n_bands}")
        self.n_bands = int(n_bands)
        #: Populated by :meth:`map_rows`: per-band rows, seconds, counters.
        self.shares: list[DeviceShare] = []

    def map_rows(self, fn, rows):
        rows = list(rows)
        bands = partition_rows(len(rows), self.n_bands)
        self.shares = []
        out = []
        for band_id, band in enumerate(bands):
            share = DeviceShare(device_id=band_id, rows=[rows[i] for i in band])
            with self.tracer.span(
                "executor:band", cat="executor",
                device_id=band_id, n_rows=len(band),
            ) as sp:
                t0 = time.perf_counter()
                for i in band:
                    result = fn(rows[i])
                    out.append(result)
                    share.n_in_tile += int(getattr(result, "n_in_tile", 0))
                    share.n_out_tile += int(getattr(result, "n_out_tile", 0))
                share.seconds = time.perf_counter() - t0
                sp.set(seconds=share.seconds, n_in_tile=share.n_in_tile)
            self.shares.append(share)
        return out

    def annotate(self, stats) -> None:
        seconds = [s.seconds for s in self.shares]
        stats["n_devices"] = self.n_bands
        stats["rows_per_device"] = [len(s.rows) for s in self.shares]
        stats["device_seconds"] = seconds
        stats["max_device_seconds"] = max(seconds, default=0.0)
        metrics = self.tracer.metrics
        if metrics.enabled:
            for share in self.shares:
                metrics.histogram(
                    "executor.band_seconds", device=str(share.device_id)
                ).observe(share.seconds)

    def __repr__(self) -> str:
        return f"BandedExecutor(n_bands={self.n_bands})"


class ProcessPoolRowExecutor(RowExecutor):
    """Row bands on a pool of worker processes (true multi-core).

    Closures cannot cross a process boundary, so the pipeline hands this
    executor a picklable :class:`repro.core.procpool.RowTaskSpec` instead
    (``needs_spec``). Rows are dispatched as contiguous bands — one per
    worker — to amortize the per-task IPC round trip; each worker attaches
    to the shared 2-bit reference by name and serves rows from its own
    warm per-process session (see :mod:`repro.core.procpool`).

    ``map_rows`` with a raw callable degrades to in-process serial
    execution: it is only reached by callers outside the spec-aware
    pipeline paths, where correctness beats parallelism.
    """

    name = "process"
    needs_spec = True

    def __init__(self, workers: int | None = None, lock_factory=None):
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers) if workers else min(8, os.cpu_count() or 1)
        self._lock = (lock_factory or new_lock)("executor.stats")  # guards: _n_rows_done
        self._n_rows_done = 0

    def map_rows(self, fn, rows):
        rows = list(rows)
        with self.tracer.span(
            "executor:process-fallback", cat="executor", n_rows=len(rows)
        ):
            return [fn(row) for row in rows]

    def _bands(self, rows: list) -> list[list]:
        n_bands = min(self.workers, len(rows))
        return [
            [rows[i] for i in band]
            for band in partition_rows(len(rows), n_bands)
            if band
        ]

    def map_row_specs(self, spec, rows: Sequence[int]) -> list:
        """Run ``spec`` over ``rows`` on the worker pool; row-order results."""
        from repro.core import procpool

        rows = list(rows)
        with self.tracer.span(
            "executor:process", cat="executor",
            n_rows=len(rows), workers=self.workers,
        ) as sp:
            if not rows:
                return []
            pool = procpool.get_pool(self.workers)
            bands = self._bands(rows)
            futures = [
                pool.submit(procpool.run_row_band, spec, band) for band in bands
            ]
            out: list = []
            for future in futures:
                results, obs = future.result()
                out.extend(results)
                merge_payload(self.tracer, obs)
            sp.set(n_bands=len(bands))
        with self._lock:
            self._n_rows_done += len(out)
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.counter("proc.rows").inc(len(out))
            metrics.counter("proc.bands").inc(len(bands))
        return out

    def build_row_specs(self, spec, rows: Sequence[int]) -> list:
        """Index-only builds for ``rows``: ``(row, index, seconds)`` triples."""
        from repro.core import procpool

        rows = list(rows)
        with self.tracer.span(
            "executor:process-build", cat="executor",
            n_rows=len(rows), workers=self.workers,
        ):
            if not rows:
                return []
            pool = procpool.get_pool(self.workers)
            futures = [
                pool.submit(procpool.build_rows, spec, band)
                for band in self._bands(rows)
            ]
            out: list = []
            for future in futures:
                triples, obs = future.result()
                out.extend(triples)
                merge_payload(self.tracer, obs)
        with self._lock:
            self._n_rows_done += len(out)
        return out

    def annotate(self, stats) -> None:
        stats["workers"] = self.workers
        with self._lock:
            stats["rows_completed"] = self._n_rows_done

    def __repr__(self) -> str:
        return f"ProcessPoolRowExecutor(workers={self.workers})"


def make_executor(
    name: str, workers: int | None = None, lock_factory=None
) -> RowExecutor:
    """Build an executor from its registry name.

    ``workers`` means pool width for ``"threads"``/``"process"`` and band
    count for ``"banded"``; it is ignored by ``"serial"``. ``lock_factory``
    (see :mod:`repro.analysis.lock_tracker`) is forwarded to executors that
    own locks so their locks join the caller's lock-order tracking.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "threads":
        return ThreadPoolRowExecutor(workers=workers, lock_factory=lock_factory)
    if name == "banded":
        return BandedExecutor(n_bands=workers or 2)
    if name == "process":
        return ProcessPoolRowExecutor(workers=workers, lock_factory=lock_factory)
    raise InvalidParameterError(
        f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
    )
