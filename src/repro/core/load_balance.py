"""Proactive load-balancing heuristic (paper Algorithm 2, §III-B1).

Within one block round, thread ``tid`` is originally responsible for one
query seed. Seed occurrence counts are wildly skewed (Fig. 6), so a static
assignment leaves most threads idle while a few grind through hot seeds —
and in SIMT, a warp is as slow as its slowest thread.

The heuristic redistributes the ``T_idle`` threads whose seeds are absent
from the index onto the non-empty seeds, proportionally to each seed's
share of the total load, using two prefix sums and a per-thread binary
search — all data-parallel.

This module is the *host-side reference implementation* (vectorized NumPy),
used by the vectorized backend's statistics and by the tests that validate
the cooperative-kernel version in :mod:`repro.core.block_stage`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class BalancePlan:
    """Result of Algorithm 2 for one round of ``tau`` threads.

    ``assign`` has ``n_seeds + 1`` entries over the *ranks* of non-empty
    seeds: threads ``[assign[j], assign[j+1])`` serve rank-``j``. ``group``
    maps each thread to its rank (−1 for threads with nothing to do, which
    only happens when every seed is empty). ``rank_to_thread`` recovers, for
    each rank, the thread whose original seed it is.
    """

    tau: int
    loads: np.ndarray
    assign: np.ndarray
    group: np.ndarray
    rank_to_thread: np.ndarray

    @property
    def n_seeds(self) -> int:
        return int(self.rank_to_thread.size)

    @property
    def t_idle(self) -> int:
        return self.tau - self.n_seeds

    @property
    def t_load(self) -> int:
        return int(self.loads.sum())

    def members(self, rank: int) -> np.ndarray:
        """Thread ids serving seed rank ``rank``."""
        return np.nonzero(self.group == rank)[0].astype(np.int64)

    def per_thread_share(self) -> np.ndarray:
        """Work items each thread processes under this plan (strided split:
        member ``p`` of ``m`` takes occurrences ``p, p+m, p+2m, ...``)."""
        share = np.zeros(self.tau, dtype=np.int64)
        active_idx = np.nonzero(self.group >= 0)[0]
        if active_idx.size == 0:
            return share
        g = self.group[active_idx]  # non-decreasing in both plan kinds
        new = np.concatenate(([True], g[1:] != g[:-1]))
        starts = np.nonzero(new)[0]
        counts = np.diff(np.append(starts, g.size))
        member_count = np.repeat(counts, counts)
        pos = np.arange(g.size) - np.repeat(starts, counts)
        load = self.loads[self.rank_to_thread[g]]
        share[active_idx] = np.maximum(
            0, (load - pos + member_count - 1) // member_count
        )
        return share


def balance_loads(loads: np.ndarray) -> BalancePlan:
    """Run Algorithm 2 on per-thread seed occurrence counts.

    ``loads[tid]`` is the number of index locations of the seed originally
    assigned to thread ``tid`` (0 when the seed does not occur).
    """
    loads = np.asarray(loads, dtype=np.int64)
    tau = int(loads.size)
    if tau < 1:
        raise InvalidParameterError("balance_loads needs at least one thread")
    if (loads < 0).any():
        raise InvalidParameterError("negative seed load")

    task = (loads > 0).astype(np.int64)
    load_incl = np.cumsum(loads)
    task_incl = np.cumsum(task)

    n_seeds = int(task_incl[-1])
    t_load = int(load_incl[-1])
    t_idle = tau - n_seeds

    rank_to_thread = np.nonzero(task)[0].astype(np.int64)
    assign = np.zeros(n_seeds + 1, dtype=np.int64)
    if n_seeds:
        nz = rank_to_thread
        # assign[j+1] = task_incl[tid_j] + floor(T_idle * load_incl[tid_j] / T_load)
        assign[1:] = task_incl[nz] + (t_idle * load_incl[nz]) // max(t_load, 1)

    group = np.full(tau, -1, dtype=np.int64)
    if n_seeds:
        # group[tid] = j with assign[j] <= tid < assign[j+1]
        group = np.searchsorted(assign, np.arange(tau), side="right") - 1
        group = np.clip(group, 0, n_seeds - 1)
    return BalancePlan(
        tau=tau,
        loads=loads,
        assign=assign,
        group=group,
        rank_to_thread=rank_to_thread,
    )


def static_plan(loads: np.ndarray) -> BalancePlan:
    """The *unbalanced* assignment (Fig. 7's baseline): one thread per seed.

    Threads whose seed is empty stay idle; non-empty seed ranks are served
    by exactly their original thread.
    """
    loads = np.asarray(loads, dtype=np.int64)
    tau = int(loads.size)
    task = (loads > 0).astype(np.int64)
    rank_to_thread = np.nonzero(task)[0].astype(np.int64)
    n_seeds = int(rank_to_thread.size)
    # group: the owner thread of rank j is rank_to_thread[j]; all other
    # threads idle. ``assign`` is synthesized to describe singleton groups
    # (it no longer partitions [0, tau) — idle threads are outside it).
    group = np.full(tau, -1, dtype=np.int64)
    group[rank_to_thread] = np.arange(n_seeds)
    assign = np.empty(n_seeds + 1, dtype=np.int64)
    assign[:-1] = rank_to_thread
    assign[-1] = rank_to_thread[-1] + 1 if n_seeds else 0
    return BalancePlan(
        tau=tau,
        loads=loads,
        assign=assign,
        group=group,
        rank_to_thread=rank_to_thread,
    )


def imbalance_ratio(share: np.ndarray, warp_size: int) -> float:
    """Warp-level imbalance of a per-thread work vector.

    1 − (mean work) / (mean of per-warp max) — 0 when perfectly balanced,
    →1 when one thread per warp does everything.
    """
    share = np.asarray(share, dtype=np.float64)
    if share.size == 0 or share.sum() == 0:
        return 0.0
    n_warp = -(-share.size // warp_size)
    padded = np.zeros(n_warp * warp_size, dtype=np.float64)
    padded[: share.size] = share
    warp_max = padded.reshape(n_warp, warp_size).max(axis=1)
    denom = warp_max.mean()
    if denom == 0:
        return 0.0
    return float(1.0 - share.mean() / denom)
