"""Collinear anchor chaining.

The paper's §I motivation: heuristic aligners "extract the shared regions
from the sequences and use them as anchors for the next step of a full
alignment process". This module supplies that next step's front half — the
classic global chaining problem: pick a maximum-weight subset of MEM
anchors that is collinear (strictly increasing in both reference and query
coordinates), weight = anchor length.

Implemented as the standard sparse dynamic program — sort by reference
start, sweep with a Fenwick (binary indexed) tree over query ranks — in
``O(n log n)`` for ``n`` anchors, with an ``O(n²)`` reference DP used by
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import TRIPLET_DTYPE, MatchSet


@dataclass(frozen=True)
class Chain:
    """A collinear chain of anchors."""

    anchors: tuple[tuple[int, int, int], ...]
    score: int

    def __len__(self) -> int:
        return len(self.anchors)

    @property
    def reference_span(self) -> tuple[int, int]:
        if not self.anchors:
            return (0, 0)
        return (self.anchors[0][0], self.anchors[-1][0] + self.anchors[-1][2])

    @property
    def query_span(self) -> tuple[int, int]:
        if not self.anchors:
            return (0, 0)
        return (self.anchors[0][1], self.anchors[-1][1] + self.anchors[-1][2])


class _FenwickMax:
    """Max-Fenwick tree holding (score, payload index)."""

    def __init__(self, n: int):
        self.n = n
        self.score = np.zeros(n + 1, dtype=np.int64)
        self.idx = np.full(n + 1, -1, dtype=np.int64)

    def update(self, pos: int, score: int, idx: int) -> None:
        pos += 1
        while pos <= self.n:
            if score > self.score[pos]:
                self.score[pos] = score
                self.idx[pos] = idx
            pos += pos & (-pos)

    def query(self, pos: int) -> tuple[int, int]:
        """Best (score, idx) over ranks <= pos (−1 idx when empty)."""
        best, bidx = 0, -1
        pos += 1
        while pos > 0:
            if self.score[pos] > best:
                best, bidx = int(self.score[pos]), int(self.idx[pos])
            pos -= pos & (-pos)
        return best, bidx


def _as_anchor_array(mems) -> np.ndarray:
    if isinstance(mems, MatchSet):
        return mems.array
    arr = np.asarray(mems)
    if arr.dtype != TRIPLET_DTYPE:
        raise TypeError("chain_anchors expects a MatchSet or a TRIPLET_DTYPE array")
    return arr


def chain_anchors(mems, *, overlap: bool = False) -> Chain:
    """Maximum-weight collinear chain of MEM anchors.

    With ``overlap=False`` (default) chained anchors must be strictly
    ordered and non-overlapping in *both* coordinates (anchor ``j`` may
    follow ``i`` iff ``r_i + λ_i <= r_j`` and ``q_i + λ_i <= q_j``); with
    ``overlap=True`` only start order matters (MUMmer-style relaxed
    chaining — overlaps are resolved later by the aligner).

    Sweep with deferred insertion: anchors are visited in reference-start
    order; an anchor enters the Fenwick tree (keyed by its query
    constraint coordinate) only once its reference constraint is satisfied
    for the current visitor, so every tree entry is a valid predecessor in
    the reference dimension and the tree prefix-max enforces the query
    dimension.
    """
    arr = _as_anchor_array(mems)
    n = int(arr.size)
    if n == 0:
        return Chain(anchors=(), score=0)

    a = arr[np.lexsort((arr["q"], arr["r"]))]
    if overlap:
        pred_r_key = a["r"]  # predecessor usable once pred.r < my r
        pred_q_key = a["q"]  # and pred.q < my q (strict)
    else:
        pred_r_key = a["r"] + a["length"]  # usable once pred end <= my start
        pred_q_key = a["q"] + a["length"]

    all_q = np.unique(pred_q_key)
    tree = _FenwickMax(all_q.size)
    score = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    insert_order = np.argsort(pred_r_key, kind="stable")
    ptr = 0

    for i in range(n):
        # admit every anchor whose reference constraint is now satisfied
        while ptr < n:
            j = int(insert_order[ptr])
            admit = (
                pred_r_key[j] < a["r"][i] if overlap
                else pred_r_key[j] <= a["r"][i]
            )
            if not admit:
                break
            rank = int(np.searchsorted(all_q, pred_q_key[j]))
            tree.update(rank, int(score[j]), j)
            ptr += 1
        side = "left" if overlap else "right"
        q_rank = int(np.searchsorted(all_q, a["q"][i], side=side)) - 1
        best, bidx = tree.query(q_rank) if q_rank >= 0 else (0, -1)
        score[i] = best + int(a["length"][i])
        parent[i] = bidx

    i = int(np.argmax(score))
    total = int(score[i])
    chain = []
    while i >= 0:
        chain.append((int(a["r"][i]), int(a["q"][i]), int(a["length"][i])))
        i = int(parent[i])
    return Chain(anchors=tuple(chain[::-1]), score=total)


def chain_anchors_naive(mems, *, overlap: bool = False) -> Chain:
    """O(n²) reference DP (tests compare against this)."""
    arr = _as_anchor_array(mems)
    n = int(arr.size)
    if n == 0:
        return Chain(anchors=(), score=0)
    order = np.lexsort((arr["q"], arr["r"]))
    a = arr[order]
    score = a["length"].astype(np.int64).copy()
    parent = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for j in range(n):
            if j == i:
                continue
            if overlap:
                ok = a["r"][j] < a["r"][i] and a["q"][j] < a["q"][i]
            else:
                ok = (
                    a["r"][j] + a["length"][j] <= a["r"][i]
                    and a["q"][j] + a["length"][j] <= a["q"][i]
                )
            if ok and score[j] + a["length"][i] > score[i]:
                score[i] = score[j] + a["length"][i]
                parent[i] = j
    i = int(np.argmax(score))
    total = int(score[i])
    chain = []
    while i >= 0:
        chain.append((int(a["r"][i]), int(a["q"][i]), int(a["length"][i])))
        i = int(parent[i])
    return Chain(anchors=tuple(chain[::-1]), score=total)
