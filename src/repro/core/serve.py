"""Long-lived MEM serving: admission control, backpressure, graceful drain.

:class:`BatchRunner` schedules a *known* stream of queries; a server faces
the opposite shape — requests arrive whenever clients send them, and the
machine must stay responsive while saying "no" cheaply once it is full.
:class:`MemServer` is that front end (the engine behind ``gpumem serve``):

- **Admission control** — a bounded FIFO queue of admitted requests.
  :meth:`submit` never blocks: when the queue is full it sheds the request
  with a structured :class:`~repro.errors.ServerOverloadedError` (depth and
  limit as attributes) so clients can back off programmatically.
- **Execution backpressure** — at most ``max_in_flight`` requests execute
  at once (a semaphore between the dispatcher and the worker pool), layered
  under the admission bound exactly like :class:`BatchRunner`'s window.
- **Tiered execution** — ``tier="thread"`` runs requests on an in-process
  pool over the shared warm session; ``tier="process"`` ships each request
  to the :mod:`repro.core.procpool` worker pool (true multi-core, shared
  2-bit reference segment, per-process warm sessions).
- **Graceful drain** — :meth:`close` stops admission, finishes (or, with
  ``drain=False``, cancels) everything already admitted, and waits for
  in-flight work; no request is ever left with an unresolved future.
- **Live telemetry** — with ``telemetry_path`` set, a daemon thread
  appends a JSONL heartbeat every ``telemetry_interval`` seconds: queue
  depth, in-flight count, admission/shed/drain counters, and request
  latency p50/p95/p99 straight from the ``serve.request_seconds``
  histogram. ``gpumem stats`` renders the stream; :meth:`snapshot` is the
  same data as a dict for in-process consumers.

Every request records a ``serve.request`` span and ``serve.*`` metrics
through the standard ``tracer=`` argument (see ``docs/observability.md``).
In the process tier each worker ships its spans and metric deltas home
with the result (:mod:`repro.obs.shipping`), so the parent trace shows
worker execution lanes and the parent registry aggregates worker-side
``proc.*`` / ``session.cache.*`` series.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.lock_tracker import new_lock
from repro.core.params import GpuMemParams
from repro.core.pipeline import PipelineStats, as_codes
from repro.core.session import MemSession
from repro.errors import (
    InvalidParameterError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.obs.shipping import merge_payload
from repro.obs.tracer import Tracer, get_tracer
from repro.types import MatchSet

#: Serving tiers: in-process threads over the shared session, or the
#: process pool of :mod:`repro.core.procpool`.
SERVE_TIERS = ("thread", "process")

#: Dispatcher shutdown sentinel (FIFO-ordered behind admitted requests).
_STOP = object()


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one served request (errors isolated, like a batch)."""

    index: int
    label: str | None
    #: The :class:`~repro.types.MatchSet` on success, else ``None``.
    value: Any
    #: The exception on failure, else ``None``.
    error: BaseException | None
    #: Wall seconds from admission to completion (queue wait included).
    seconds: float
    ok: bool = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "ok", self.error is None)


@dataclass
class _Request:
    index: int
    label: str | None
    query: Any
    future: Future
    t_admitted: float


class MemServer:
    """A long-lived MEM extraction server over one warm reference.

    Parameters mirror :class:`~repro.core.batch.BatchRunner` where they
    overlap; the serving-specific knobs are ``tier`` (execution substrate),
    ``max_in_flight`` (concurrent executions), ``admission_limit``
    (queued-but-not-executing bound; default ``2 * max_in_flight``), and
    ``telemetry_path`` / ``telemetry_interval`` (append a
    :meth:`snapshot` JSONL heartbeat to that file every interval seconds;
    off when the path is ``None``).

    Example::

        with MemServer(reference, min_length=40, workers=4) as server:
            future = server.submit(read, label="read-1")
            result = future.result()      # a ServeResult
    """

    def __init__(
        self,
        session_or_reference,
        params: GpuMemParams | None = None,
        /,
        *,
        tier: str = "thread",
        workers: int | None = None,
        max_in_flight: int | None = None,
        admission_limit: int | None = None,
        telemetry_path=None,
        telemetry_interval: float = 1.0,
        tracer: Tracer | None = None,
        lock_factory=None,
        **kwargs,
    ):
        if tier not in SERVE_TIERS:
            raise InvalidParameterError(
                f"tier must be one of {SERVE_TIERS}, got {tier!r}"
            )
        self.tier = tier
        if isinstance(session_or_reference, MemSession):
            if params is not None or kwargs:
                raise InvalidParameterError(
                    "pass params/kwargs only when building a new session, "
                    "not alongside an existing MemSession"
                )
            self.session = session_or_reference
            self.tracer = get_tracer(tracer) if tracer else self.session.tracer
            lock_factory = lock_factory or self.session._lock_factory
        else:
            self.session = MemSession(
                session_or_reference, params, tracer=tracer,
                lock_factory=lock_factory, **kwargs
            )
            self.tracer = self.session.tracer
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers) if workers else min(8, os.cpu_count() or 1)
        if max_in_flight is None:
            max_in_flight = self.workers
        if max_in_flight < 1:
            raise InvalidParameterError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = int(max_in_flight)
        if admission_limit is None:
            admission_limit = 2 * self.max_in_flight
        if admission_limit < 1:
            raise InvalidParameterError(
                f"admission_limit must be >= 1, got {admission_limit}"
            )
        self.admission_limit = int(admission_limit)

        self._queue: queue.Queue = queue.Queue(maxsize=self.admission_limit)
        self._sem = threading.Semaphore(self.max_in_flight)
        self._state_lock = (lock_factory or new_lock)("serve.state")  # guards: _closed, _cancelling, _next_index, _counts, _in_flight
        self._closed = False
        self._cancelling = False
        self._next_index = 0
        self._in_flight = 0
        self._counts = {
            "submitted": 0, "completed": 0, "errors": 0,
            "shed": 0, "cancelled": 0,
        }
        self._proc_spec_base = None
        if self.tier == "process":
            # Publish the reference once, up front: submissions then only
            # pickle the tiny locator + query bytes per request.
            from repro.core import procpool

            self._proc_spec_base = procpool.make_spec(
                self.session.reference, self.session.params,
                use_cache=True, assume_warm=True, tracer=self.tracer,
                store=self.session.store,
            )
        # Validate everything *before* starting threads or the pool: a
        # constructor that raises after ``_dispatcher.start()`` leaks a
        # live dispatcher thread and executor the caller can never join
        # (found by the resource audit; the half-built server has no
        # handle to close()).
        if telemetry_interval <= 0:
            raise InvalidParameterError(
                f"telemetry_interval must be > 0, got {telemetry_interval}"
            )
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_in_flight, thread_name_prefix="gpumem-serve"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="gpumem-serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        self.telemetry_path = Path(telemetry_path) if telemetry_path else None
        self.telemetry_interval = float(telemetry_interval)
        self._telemetry_stop = threading.Event()
        self._telemetry_lock = (lock_factory or new_lock)("serve.telemetry")  # guards: telemetry file appends
        self._telemetry: threading.Thread | None = None
        if self.telemetry_path is not None:
            self._telemetry = threading.Thread(
                target=self._telemetry_loop, name="gpumem-serve-telemetry",
                daemon=True,
            )
            self._telemetry.start()

    # -- client surface ---------------------------------------------------------
    def submit(self, query, *, label: str | None = None) -> Future:
        """Admit one request; returns a future resolving to a ServeResult.

        Never blocks: raises :class:`ServerOverloadedError` when the
        admission queue is full and :class:`ServerClosedError` after
        :meth:`close` — both *before* accepting the work.
        """
        metrics = self.tracer.metrics
        with self._state_lock:
            if self._closed:
                raise ServerClosedError("server is draining or closed")
            index = self._next_index
            self._next_index += 1
        future: Future = Future()
        request = _Request(
            index=index, label=label, query=query, future=future,
            t_admitted=time.perf_counter(),
        )
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._state_lock:
                self._counts["shed"] += 1
            if metrics.enabled:
                metrics.counter("serve.requests", outcome="shed").inc()
            raise ServerOverloadedError(
                self._queue.qsize(), self.admission_limit
            ) from None
        with self._state_lock:
            self._counts["submitted"] += 1
        if metrics.enabled:
            metrics.counter("serve.requests", outcome="admitted").inc()
            metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        return future

    def request(self, query, *, label: str | None = None,
                timeout: float | None = None) -> ServeResult:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(query, label=label).result(timeout=timeout)

    def stats(self) -> dict:
        """Counters + live depths (safe to call concurrently)."""
        with self._state_lock:
            counts = dict(self._counts)
            counts["in_flight"] = self._in_flight
        counts["queue_depth"] = self._queue.qsize()
        counts["admission_limit"] = self.admission_limit
        counts["max_in_flight"] = self.max_in_flight
        counts["tier"] = self.tier
        return counts

    def snapshot(self) -> dict:
        """One telemetry heartbeat: :meth:`stats` + request-latency summary.

        What the telemetry thread appends as a JSONL line (and what
        ``gpumem stats`` renders): wall-clock timestamp, queue/in-flight
        depths, lifetime counters, and — when metrics are on —
        count/mean/p50/p95/p99 of ``serve.request_seconds``, estimated
        from the histogram buckets
        (:meth:`~repro.obs.metrics.Histogram.summary`).
        """
        snap = self.stats()
        snap["ts"] = time.time()
        metrics = self.tracer.metrics
        if metrics.enabled:
            summary = metrics.histogram("serve.request_seconds").summary()
            snap["latency"] = summary or None
        return snap

    # -- lifecycle --------------------------------------------------------------
    def close(self, *, drain: bool = True) -> dict:
        """Stop admission, finish (or cancel) queued work, wait, report.

        ``drain=True`` (default) completes every admitted request before
        returning; ``drain=False`` fails still-queued requests with
        :class:`ServerClosedError` and only waits for in-flight ones.
        Idempotent. Returns the final :meth:`stats` plus drain seconds.
        """
        t0 = time.perf_counter()
        with self._state_lock:
            already = self._closed
            self._closed = True
            if not drain:
                self._cancelling = True
        if not already:
            self._queue.put(_STOP)  # FIFO: lands behind all admitted work
        self._dispatcher.join()
        self._drain_leftovers()
        self._pool.shutdown(wait=True)
        if self._telemetry is not None:
            self._telemetry_stop.set()
            self._telemetry.join()
            if not already:
                self._emit_snapshot()  # final heartbeat: the drained state
        seconds = time.perf_counter() - t0
        metrics = self.tracer.metrics
        if metrics.enabled and not already:
            metrics.histogram("serve.drain_seconds").observe(seconds)
            metrics.gauge("serve.queue_depth").set(0)
        out = self.stats()
        out["drain_seconds"] = seconds
        return out

    def __enter__(self) -> "MemServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals --------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is _STOP:
                return
            with self._state_lock:
                cancelling = self._cancelling
            if cancelling:
                self._cancel(request)
                continue
            # Blocks while max_in_flight requests execute (held outside any
            # lock); released by the request itself in _execute.
            self._sem.acquire()
            self._pool.submit(self._execute, request)

    def _drain_leftovers(self) -> None:
        """Fail anything that slipped into the queue behind the sentinel."""
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            if request is not _STOP:
                self._cancel(request)

    def _cancel(self, request: _Request) -> None:
        with self._state_lock:
            self._counts["cancelled"] += 1
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.counter("serve.requests", outcome="cancelled").inc()
        request.future.set_result(
            ServeResult(
                index=request.index, label=request.label, value=None,
                error=ServerClosedError("server closed before execution"),
                seconds=time.perf_counter() - request.t_admitted,
            )
        )

    def _execute(self, request: _Request) -> None:
        tracer = self.tracer
        metrics = tracer.metrics
        wait_seconds = time.perf_counter() - request.t_admitted
        with self._state_lock:
            self._in_flight += 1
            in_flight = self._in_flight
        if metrics.enabled:
            metrics.histogram("serve.queue_wait_seconds").observe(wait_seconds)
            metrics.gauge("serve.in_flight").set(in_flight)
        value: Any = None
        error: BaseException | None = None
        try:
            with tracer.span(
                "serve.request", cat="serve",
                index=request.index, label=request.label or "",
                tier=self.tier,
            ) as sp:
                if self.tier == "process":
                    value = self._run_process(request)
                else:
                    value = self.session.find_mems(as_codes(request.query))
                sp.set(n_mems=len(value))
        except Exception as exc:  # noqa: BLE001 - per-request isolation
            error = exc
        finally:
            self._sem.release()
        seconds = time.perf_counter() - request.t_admitted
        with self._state_lock:
            self._in_flight -= 1
            in_flight = self._in_flight
            self._counts["completed"] += 1
            if error is not None:
                self._counts["errors"] += 1
        if metrics.enabled:
            outcome = "ok" if error is None else "error"
            metrics.counter("serve.requests", outcome=outcome).inc()
            metrics.histogram("serve.request_seconds").observe(seconds)
            metrics.gauge("serve.in_flight").set(in_flight)
        request.future.set_result(
            ServeResult(
                index=request.index, label=request.label, value=value,
                error=error, seconds=seconds,
            )
        )

    def _run_process(self, request: _Request) -> MatchSet:
        """Ship one request to the process pool and rebuild the MatchSet."""
        from dataclasses import replace

        from repro.core import procpool

        codes = as_codes(request.query)
        spec = replace(self._proc_spec_base, query=codes.tobytes())
        payload = procpool.get_pool(self.workers).submit(
            procpool.run_query_task, spec, request.index, request.label
        ).result()
        # Merge before checking ok: a failing request's worker spans and
        # counters still belong in the parent trace.
        merge_payload(self.tracer, payload.get("obs"))
        if not payload["ok"]:
            raise payload["error"]
        return MatchSet(
            payload["array"], stats=PipelineStats.from_dict(payload["stats"])
        )

    # -- telemetry ---------------------------------------------------------------
    def _telemetry_loop(self) -> None:
        while not self._telemetry_stop.wait(self.telemetry_interval):
            self._emit_snapshot()

    def _emit_snapshot(self) -> None:
        """Append one :meth:`snapshot` as a JSONL line (errors swallowed)."""
        try:
            line = json.dumps(self.snapshot(), sort_keys=True)
            with self._telemetry_lock:
                with self.telemetry_path.open("a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        except Exception:  # pragma: no cover - telemetry must never kill serving
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemServer(tier={self.tier!r}, workers={self.workers}, "
            f"max_in_flight={self.max_in_flight}, "
            f"admission_limit={self.admission_limit})"
        )
