"""Process-sharded execution: spawn-safe workers over a shared reference.

The GIL caps the thread executor at ~1.1x on CPU-bound rows, so the
``"process"`` tier ships work to a pool of worker *processes* instead. The
pieces that make that cheap and correct live here:

- **Reference transport.** :func:`publish_reference` turns a code array
  into a picklable :class:`ReferenceLocator`: tiny references ride inline
  in the task pickle; large ones are published once as a named
  ``multiprocessing.shared_memory`` segment (via
  :meth:`~repro.sequence.packed.PackedSequence.to_shared`) that every
  worker attaches to zero-copy by name.
- **Task protocol.** A :class:`RowTaskSpec` is the complete, picklable
  description of worker-side work: the reference locator, spawn-safe
  params (row executor forced back to ``"serial"`` so workers never nest
  pools), the query codes, and cache semantics.
- **Worker-side state.** Each worker process keeps attached references and
  warm :class:`~repro.core.session.MemSession` objects in small
  module-level caches, so the per-reference index builds happen once per
  worker, not once per task (the ISSUE's "per-process session warmup").
- **Registries.** Pools and published segments are process-wide and
  reused across executors/runners; ``atexit`` tears both down so no
  segment outlives the owner.

Worker entry points (:func:`run_row_band`, :func:`build_rows`,
:func:`run_query_task`) are module-level functions so they import cleanly
under the ``spawn`` start method (the default; override with
``REPRO_MP_START=fork`` where fork semantics are acceptable).
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.analysis import resource_tracker as _res
from repro.core.params import GpuMemParams
from repro.sequence.packed import PackedSequence, SharedSequenceHandle, pack_bits

#: Packed references at or below this many bytes ride inline in the task
#: pickle; larger ones go through a shared-memory segment. 32 KiB packed is
#: 128k bases — below that, segment setup costs more than the copy.
INLINE_PACKED_BYTES = 1 << 15

#: Shared segments the parent keeps published at once (LRU beyond this).
SHARED_REF_CAPACITY = 4


def start_method() -> str:
    """The multiprocessing start method for worker pools.

    ``spawn`` (default) is portable and never inherits locks mid-state;
    ``REPRO_MP_START=fork`` opts into cheaper startup where that matters.
    """
    return os.environ.get("REPRO_MP_START", "spawn")


@dataclass(frozen=True)
class ReferenceLocator:
    """Picklable pointer to a reference: shared segment or inline bytes."""

    #: Content hash (see :func:`repro.core.session.reference_fingerprint`);
    #: keys the worker-side attach/session caches.
    fingerprint: str
    n_bases: int
    #: Set for shared-memory transport (large references).
    handle: SharedSequenceHandle | None = None
    #: Set for inline transport (small references): 2-bit packed bytes.
    packed: bytes | None = None


@dataclass(frozen=True)
class RowTaskSpec:
    """Everything a worker needs to run pipeline work for one query.

    Fully picklable and self-contained: workers rebuild their pipeline from
    these fields alone, so tasks survive the ``spawn`` start method.
    """

    ref: ReferenceLocator
    #: Spawn-safe params: row executor forced to ``"serial"`` so a worker
    #: never opens its own pool under the parent's pool.
    params: GpuMemParams
    #: Query codes as raw bytes (uint8), empty for index-only work.
    query: bytes = b""
    #: Route worker rows through a per-process session cache.
    use_cache: bool = True
    #: The parent's cache is fully warm — warm the worker session up front
    #: so every row reports a cache hit with zero index seconds, matching
    #: the serial warm-session contract.
    assume_warm: bool = False
    #: Parent-session identity: worker sessions are keyed by it, so a fresh
    #: parent session starts from fresh worker caches (its first query
    #: reports genuine misses, like serial) instead of inheriting another
    #: session's warmth. ``None`` shares worker sessions by content alone
    #: (the always-warm batch/serve tiers, where only warmth matters).
    token: int | None = None
    #: Ship worker-side observability home: the task runs under the
    #: process-local :class:`~repro.obs.shipping.WorkerObs` tracer and the
    #: result carries an :class:`~repro.obs.shipping.ObsPayload` (spans +
    #: metric deltas) for the parent to merge. Set automatically by
    #: :func:`make_spec` when the parent's tracer is enabled.
    ship_obs: bool = False
    #: Persistent index-store cache dir the worker session should attach to
    #: (``None`` = no explicit store; the worker still resolves the
    #: inherited ``REPRO_INDEX_STORE`` environment default, if any). Set by
    #: :func:`make_spec` from the parent session's store, so parent and
    #: workers share one on-disk warm tier and single-flight their builds.
    store_dir: str | None = None


_token_counter = itertools.count(1)


def next_session_token() -> int:
    """A process-unique token tying worker sessions to one parent session."""
    return next(_token_counter)


def worker_params(params: GpuMemParams) -> GpuMemParams:
    """The params a worker runs under: same geometry, serial rows."""
    if params.executor == "serial" and params.workers is None:
        return params
    return params.with_(executor="serial", workers=None)


def make_spec(
    reference: np.ndarray,
    params: GpuMemParams,
    *,
    query: np.ndarray | None = None,
    use_cache: bool = True,
    assume_warm: bool = False,
    token: int | None = None,
    tracer=None,
    store=None,
) -> RowTaskSpec:
    """Build the picklable task spec for ``reference``/``params``/``query``.

    When the caller's tracer is enabled the spec asks workers to ship
    their observability home (``ship_obs``) — kernel spans, session-cache
    counters, and sanitizer events recorded inside the worker then land in
    the parent's registry/trace instead of dying with the process.

    ``store`` (the parent session's :class:`~repro.index.store.IndexStore`,
    or ``None``) travels as its cache-dir path so workers attach their own
    handle to the same on-disk store.
    """
    from repro.obs.tracer import get_tracer

    return RowTaskSpec(
        ref=publish_reference(reference, tracer=tracer),
        params=worker_params(params),
        query=b"" if query is None else np.ascontiguousarray(
            query, dtype=np.uint8
        ).tobytes(),
        use_cache=use_cache,
        assume_warm=assume_warm,
        token=token,
        ship_obs=get_tracer(tracer).enabled,
        store_dir=None if store is None else str(store.cache_dir),
    )


# -- parent-side registries ----------------------------------------------------

_registry_lock = threading.Lock()  # guards: _shared_refs, _pools
#: fingerprint -> owning PackedSequence (keeps its segment alive).
_shared_refs: OrderedDict[str, PackedSequence] = OrderedDict()
#: (start_method, workers) -> live pool.
_pools: dict[tuple[str, int], ProcessPoolExecutor] = {}


def publish_reference(reference: np.ndarray, *, tracer=None) -> ReferenceLocator:
    """A :class:`ReferenceLocator` for ``reference``, publishing if needed.

    Small references are inlined; large ones are placed in (or served from)
    the process-wide shared-segment registry, so many executors/runners
    publishing the same genome share one segment.
    """
    from repro.core.session import reference_fingerprint
    from repro.obs.tracer import get_tracer

    codes = np.ascontiguousarray(reference, dtype=np.uint8)
    fingerprint = reference_fingerprint(codes)
    metrics = get_tracer(tracer).metrics
    packed = pack_bits(codes)
    if packed.nbytes <= INLINE_PACKED_BYTES:
        if metrics.enabled:
            metrics.counter("proc.ref.published", transport="inline").inc()
        return ReferenceLocator(
            fingerprint=fingerprint,
            n_bases=int(codes.size),
            packed=packed.tobytes(),
        )
    evicted: list[PackedSequence] = []
    with _registry_lock:
        seq = _shared_refs.get(fingerprint)
        if seq is not None:
            _shared_refs.move_to_end(fingerprint)
            handle = seq.to_shared()
        else:
            seq = PackedSequence.from_packed(packed, int(codes.size))
            handle = seq.to_shared()
            # The registry keeps this segment alive across runners by
            # design: adopt it so the leak audit charges only segments
            # that escaped the registry.
            _res.adopt("shm", handle.shm_name, "procpool._shared_refs")
            _shared_refs[fingerprint] = seq
            while len(_shared_refs) > SHARED_REF_CAPACITY:
                evicted.append(_shared_refs.popitem(last=False)[1])
    for old in evicted:
        if old._shm is not None:
            _res.disown("shm", old._shm.name)
        old.unlink_shared()
    if metrics.enabled:
        metrics.counter("proc.ref.published", transport="shm").inc()
        metrics.gauge("proc.ref.segments").set(len(_shared_refs))
    return ReferenceLocator(
        fingerprint=fingerprint, n_bases=int(codes.size), handle=handle
    )


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide worker pool of the given width (created on demand)."""
    import multiprocessing as mp

    key = (start_method(), int(workers))
    with _registry_lock:
        pool = _pools.get(key)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=int(workers), mp_context=mp.get_context(key[0])
            )
            _pools[key] = pool
    return pool


def discard_pool(workers: int) -> None:
    """Drop (and shut down) a pool — e.g. after a worker crash broke it."""
    key = (start_method(), int(workers))
    with _registry_lock:
        pool = _pools.pop(key, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown() -> None:
    """Tear down every pool and unlink every published segment."""
    with _registry_lock:
        pools = list(_pools.values())
        _pools.clear()
        refs = list(_shared_refs.values())
        _shared_refs.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)
    for seq in refs:
        if seq._shm is not None:
            _res.disown("shm", seq._shm.name)
        seq.unlink_shared()


atexit.register(shutdown)


def registry_info() -> dict:
    """Introspection for tests: live pools and published segments."""
    with _registry_lock:
        return {
            "n_pools": len(_pools),
            "n_segments": len(_shared_refs),
            "segment_names": [
                seq._shm.name for seq in _shared_refs.values() if seq._shm is not None
            ],
        }


# -- worker-side state ---------------------------------------------------------

#: Sessions one worker process keeps warm at once.
WORKER_SESSION_CAPACITY = 4

_worker_lock = threading.Lock()  # guards: _worker_refs, _worker_sessions, _worker_obs
#: fingerprint -> attached PackedSequence (holds the segment mapping open).
_worker_refs: dict[str, PackedSequence] = {}
#: (fingerprint, params, token, ship_obs) -> per-process MemSession.
_worker_sessions: OrderedDict[tuple, object] = OrderedDict()
#: This process's span/metric capture state (created on first shipped task).
_worker_obs = None


def worker_obs():
    """The process-local :class:`~repro.obs.shipping.WorkerObs` singleton.

    Lives for the worker's whole life so its metric snapshot can turn
    lifetime totals into per-payload increments; sessions built for
    ``ship_obs`` specs record through its tracer.
    """
    global _worker_obs
    from repro.obs.shipping import WorkerObs

    with _worker_lock:
        if _worker_obs is None:
            _worker_obs = WorkerObs()
            # Route this process's res.* counters through the worker
            # registry so they ride the ObsPayload delta freight home
            # alongside proc.*/session.* — the parent sees worker-side
            # segment attaches and closes in its own metrics.
            tracker = _res.active_tracker()
            if tracker is not None:
                tracker.bind_metrics(_worker_obs.tracer.metrics)
        return _worker_obs


def _worker_cleanup() -> None:
    """Detach this process's attached segments at interpreter exit.

    Live numpy views over ``shm.buf`` make ``SharedMemory.__del__`` raise
    ``BufferError`` during teardown; detaching explicitly (without
    materializing — the process is exiting) keeps worker shutdown silent.
    """
    with _worker_lock:
        refs = list(_worker_refs.values())
        _worker_refs.clear()
        _worker_sessions.clear()
    for seq in refs:
        seq.close_shared(materialize=False)


atexit.register(_worker_cleanup)


def _attach_codes(ref: ReferenceLocator) -> np.ndarray:
    """This process's code array for ``ref`` (attaching/unpacking once)."""
    with _worker_lock:
        seq = _worker_refs.get(ref.fingerprint)
        if seq is None:
            if ref.handle is not None:
                seq = PackedSequence.from_shared(ref.handle)
                # Worker keeps the mapping open for its whole life (that
                # is the zero-copy point); _worker_cleanup closes it.
                _res.adopt(
                    "shm-attach", ref.handle.shm_name, "procpool._worker_refs"
                )
            else:
                seq = PackedSequence.from_packed(
                    np.frombuffer(ref.packed, dtype=np.uint8), ref.n_bases
                )
            _worker_refs[ref.fingerprint] = seq
    return seq.codes()


def _session_for(spec: RowTaskSpec):
    """The per-process session for ``(reference, params)``, LRU-cached.

    ``ship_obs`` joins the key: an instrumented session records through
    the worker tracer, an uninstrumented one must stay null-traced, and
    the two must never be conflated (in practice one parent run is
    homogeneous, so the split costs nothing).
    """
    from repro.core.session import MemSession
    from repro.index.store import store_at

    key = (
        spec.ref.fingerprint, spec.params, spec.token, spec.ship_obs,
        spec.store_dir,
    )
    with _worker_lock:
        session = _worker_sessions.get(key)
        if session is not None:
            _worker_sessions.move_to_end(key)
            return session
    codes = _attach_codes(spec.ref)
    tracer = worker_obs().tracer if spec.ship_obs else None
    store = store_at(spec.store_dir, tracer=tracer) if spec.store_dir else None
    session = MemSession(codes, spec.params, tracer=tracer, store=store)
    with _worker_lock:
        session = _worker_sessions.setdefault(key, session)
        _worker_sessions.move_to_end(key)
        while len(_worker_sessions) > WORKER_SESSION_CAPACITY:
            _worker_sessions.popitem(last=False)
    return session


def _ensure_warm(session) -> float:
    """Build any missing row indexes of a worker session; returns seconds."""
    if session.cache_info()["n_cached"] >= session.n_rows:
        return 0.0
    return float(session.warm())


# -- worker entry points -------------------------------------------------------

def _collect_obs(spec: RowTaskSpec):
    """This task's :class:`~repro.obs.shipping.ObsPayload` (or ``None``)."""
    if not spec.ship_obs:
        return None
    return worker_obs().collect()


def run_row_band(spec: RowTaskSpec, rows: list[int]) -> tuple[list, object]:
    """Run the index+match stages for a band of tile rows (worker side).

    Returns ``(results, obs)``: the picklable
    :class:`~repro.core.pipeline.RowResult` list in band order, plus the
    task's :class:`~repro.obs.shipping.ObsPayload` when the spec ships
    observability (``None`` otherwise). With ``assume_warm`` the worker
    session is fully warmed first, so every row reports
    ``cache_hit=True`` / zero index seconds — the same stats a warm serial
    session produces.
    """
    from repro.core.pipeline import Pipeline

    codes = _attach_codes(spec.ref)
    if spec.use_cache:
        session = _session_for(spec)
        if spec.assume_warm:
            _ensure_warm(session)
        pipeline, cache = session.pipeline, session
    else:
        tracer = worker_obs().tracer if spec.ship_obs else None
        pipeline, cache = Pipeline(spec.params, tracer=tracer), None
    query = np.frombuffer(spec.query, dtype=np.uint8)
    plan = pipeline.plan_for(codes.size, query.size)
    query_kmers = pipeline.prep.run(query)
    results = [
        pipeline.process_row(codes, query, query_kmers, plan, row, cache=cache)
        for row in rows
    ]
    return results, _collect_obs(spec)


def build_rows(spec: RowTaskSpec, rows: list[int]) -> tuple[list, object]:
    """Build row indexes fresh (worker side): ``(row, index, seconds)``.

    Always measures a real build — the warm path's Table-III semantics —
    and feeds the result into this worker's session cache so subsequent
    queries here start warm. Returns ``(triples, obs)`` like
    :func:`run_row_band`.
    """
    from repro.core.pipeline import Pipeline

    codes = _attach_codes(spec.ref)
    tracer = worker_obs().tracer if spec.ship_obs else None
    pipeline = Pipeline(spec.params, tracer=tracer)
    plan = pipeline.plan_for(codes.size, spec.params.tile_size)
    session = _session_for(spec) if spec.use_cache else None
    out = []
    for row in rows:
        index, seconds, _ = pipeline.row_index.run(codes, plan, row, cache=None)
        if session is not None:
            session.put(row, index)
        out.append((row, index, seconds))
    return out, _collect_obs(spec)


def run_query_task(spec: RowTaskSpec, index: int, label: str | None) -> dict:
    """Extract all MEMs of one query (worker side of the batch/serve tiers).

    Never raises: failures come back as a structured ``ok=False`` payload
    (with a picklable exception) so one poisoned query cannot poison the
    pool protocol. The worker session is warmed on first touch, so steady
    state is match-only cost. The ``"obs"`` key carries the task's
    :class:`~repro.obs.shipping.ObsPayload` (``None`` unless the spec
    ships observability) — on errors too, so a failing query's worker
    spans still reach the parent trace.
    """
    t0 = time.perf_counter()
    try:
        session = _session_for(spec)
        if spec.assume_warm:
            _ensure_warm(session)
        query = np.frombuffer(spec.query, dtype=np.uint8)
        result = session.find_mems(query)
        return {
            "ok": True,
            "index": index,
            "label": label,
            "array": result.array,
            "stats": result.stats.to_dict(),
            "seconds": time.perf_counter() - t0,
            "obs": _collect_obs(spec),
        }
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        try:
            pickle.dumps(exc)
            error: BaseException = exc
        except Exception:
            error = RuntimeError(repr(exc))
        return {
            "ok": False,
            "index": index,
            "label": label,
            "error": error,
            "seconds": time.perf_counter() - t0,
            "obs": _collect_obs(spec),
        }
