"""Pytest plugin: run IPC-heavy tests under the runtime resource tracker.

Register it from a ``conftest.py``::

    pytest_plugins = ["repro.analysis.pytest_resource_tracker"]

Two ways in (mirroring ``pytest_lock_tracker``):

- Take the ``resource_tracker`` fixture: a fresh raise-mode
  :class:`repro.analysis.resource_tracker.ResourceTracker` is installed
  process-wide, so every shared-memory segment, store mmap, and fcntl
  file lock the test touches is tracked. Misuse (double close, double
  unlink, unbalanced release) raises
  :class:`repro.errors.ResourceLeakError` at the offending call; at
  teardown an audit fails the test if any non-adopted resource the test
  opened is still live.
- Set ``REPRO_RESOURCE_TRACKER=1`` (CI's ``tests-resource`` leg): one
  process-global tracker covers *every* test in the run without touching
  any test body; an autouse fixture audits the per-test *delta* of live
  resources, so one leaking test does not fail every test after it.

For tests that *expect* findings, build a
``ResourceTracker(mode="collect")`` and ``install()`` it directly.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import resource_tracker as rt


@pytest.fixture
def resource_tracker():
    """A raise-mode tracker installed process-wide for this test."""
    tracker = rt.ResourceTracker(mode="raise")
    rt.install(tracker)
    try:
        yield tracker
    finally:
        rt.uninstall()
    leaked = tracker.leaks()
    assert not leaked, (
        "resource tracker audit found live resources at test teardown:\n"
        + "\n".join(r.format() for r in leaked)
    )
    assert not tracker.findings, (
        "resource tracker recorded misuse findings:\n"
        + tracker.format_findings()
    )


@pytest.fixture(autouse=True)
def _env_resource_tracker():
    """``REPRO_RESOURCE_TRACKER=1`` mode: per-test delta audit.

    The tracker itself is created lazily by the first hook call (see
    :func:`repro.analysis.resource_tracker.active_tracker`); this fixture
    baselines the live-resource set and finding count before the test and
    audits only what the test added. Long-lived registries (procpool's
    shared-segment cache, the index store's hot tier) adopt their
    resources, so cross-test warmth never reads as a leak.
    """
    if not os.environ.get("REPRO_RESOURCE_TRACKER"):
        yield
        return
    tracker = rt.active_tracker()
    if tracker is None:
        yield
        return
    baseline = tracker.live_snapshot()
    before = len(tracker.findings)
    yield
    tracker = rt.active_tracker()
    if tracker is None:
        return
    fresh = tracker.findings[before:]
    assert not fresh, (
        "resource tracker recorded misuse during this test:\n"
        + "\n".join(f.format() for f in fresh)
    )
    leaked = tracker.leaks(baseline=baseline)
    assert not leaked, (
        "resources opened during this test are still live at teardown:\n"
        + "\n".join(r.format() for r in leaked)
    )
