"""Pytest plugin: run simulated-GPU kernels under the SIMT sanitizer.

Register it from a ``conftest.py``::

    pytest_plugins = ["repro.analysis.pytest_sanitizer"]

and take the ``sanitized_device`` fixture in kernel tests. Launches on that
device record every shared-memory and array-argument access; the fixture
fails the test at teardown if any race was observed (barrier divergence
raises :class:`repro.errors.BarrierDivergenceError` immediately, as always).

For tests that *expect* races, take ``simt_sanitizer`` directly and assert
on its ``findings``.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import Sanitizer
from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device


@pytest.fixture
def simt_sanitizer() -> Sanitizer:
    """A fresh collecting sanitizer (no teardown assertion)."""
    return Sanitizer(mode="collect")


@pytest.fixture
def sanitized_device(simt_sanitizer):
    """A TEST_DEVICE whose launches are race-checked; asserts clean at exit."""
    device = Device(TEST_DEVICE, schedule_seed=1, sanitizer=simt_sanitizer)
    yield device
    assert not simt_sanitizer.findings, (
        "SIMT sanitizer found races:\n" + simt_sanitizer.format_findings()
    )
