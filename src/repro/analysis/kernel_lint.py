"""Static SIMT lint for simulated-GPU kernel sources.

Kernels in this codebase are Python generator functions (first parameter
``ctx``, each ``yield`` a ``__syncthreads`` barrier) executed by
:class:`repro.gpu.kernel.Device`. The simulator's shuffled schedule makes
many SIMT bug classes *reproducible*, but only at runtime and only on the
schedules a test happens to draw. This module is the complementary static
layer: an AST pass that flags the bug classes before any kernel runs.

Rules
-----

``KL101`` **barrier divergence** *(error, kernel scope)*
    A ``yield`` (barrier) reachable under thread-varying control flow — an
    ``if``/``while`` whose test, or a ``for`` whose iterable, depends on
    ``ctx.tid``/``ctx.gtid`` (directly or through assignments). On real
    hardware a ``__syncthreads`` in divergent code is undefined behaviour;
    the simulator raises :class:`~repro.errors.BarrierDivergenceError` at
    runtime only when a schedule actually desynchronizes.

``KL102`` **non-atomic shared write** *(error, kernel scope)*
    A plain subscript store to a device array where the address is uniform
    across threads (index not thread-varying) and the store is not
    predicated on a thread-varying condition (``if ctx.tid == 0: ...``).
    Every thread of the block writes the same address in the same phase —
    a write-write race. Use the ``ctx.atomic_*`` helpers or predicate the
    store.

``KL103`` **unaccounted loop** *(warning, kernel scope)*
    A loop that performs work (calls or array accesses) but contains no
    ``ctx.work(...)`` or ``ctx.atomic_*`` call. The cost model then sees
    zero cycles for the loop, which silently skews every simulated-time
    figure derived from the kernel.

``KL201`` **missing dtype** *(warning, module scope)*
    ``np.empty/np.zeros/np.ones/np.full`` without an explicit ``dtype``.
    The float64 default is almost never what a 2-bit-packed / int64-triplet
    pipeline wants, and dtype drift between backends breaks the
    vectorized-vs-simulated equivalence tests in confusing ways.

``KL202`` **narrowing dtype** *(warning, module scope)*
    An ``int32``/``int16``/``uint32`` dtype request (``dtype=np.int32`` or
    ``.astype(np.int32)``). Triplet components (``r``, ``q``, ``length``),
    ``locs`` and ``ptrs`` are int64 by contract (chromosome-scale offsets
    overflow int32); narrowing them is the copMEM-style sampling-index bug
    class.

A finding on a line whose trailing comment contains ``simt: ignore`` (or
``simt: ignore[KL103]`` for one rule) is suppressed.

Kernel detection: any generator function whose first parameter is named
``ctx``. A module may additionally register functions by name in a
module-level ``__simt_kernels__ = ("name", ...)`` tuple.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import asdict, dataclass

__all__ = [
    "Finding",
    "RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_findings",
    "findings_to_json",
]

#: rule id -> (severity, short description)
RULES = {
    "KL101": ("error", "barrier (yield) under thread-varying control flow"),
    "KL102": ("error", "non-atomic store to a uniform device-array address"),
    "KL103": ("warning", "loop does work but never charges ctx.work()"),
    "KL201": ("warning", "array constructor without explicit dtype"),
    "KL202": ("warning", "narrowing dtype on a 64-bit pipeline array"),
}

_NARROW_DTYPES = {"int32", "uint32", "int16", "uint16", "int8"}
_CTORS_DTYPE_ARG2 = {"empty", "zeros", "ones"}  # dtype is 2nd positional
_CTORS_DTYPE_ARG3 = {"full"}  # dtype is 3rd positional


@dataclass(frozen=True)
class Finding:
    """One lint finding, with enough provenance to be a CI gate message."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    kernel: str | None = None

    def format(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        scope = f" [kernel {self.kernel}]" if self.kernel else ""
        return f"{where}: {self.rule} {self.severity}:{scope} {self.message}"


# --------------------------------------------------------------------------
# helpers over the AST
# --------------------------------------------------------------------------


def _is_ctx_attr(node: ast.AST, names: tuple[str, ...]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "ctx"
        and node.attr in names
    )


def _is_ctx_method_call(node: ast.AST, names: tuple[str, ...]) -> bool:
    return isinstance(node, ast.Call) and _is_ctx_attr(node.func, names)


_ATOMICS = ("atomic_add", "atomic_max", "atomic_exch", "atomic_min", "atomic_cas")


def _assigned_names(target: ast.AST) -> list[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_assigned_names(elt))
        return out
    return []


def _walk_no_nested_functions(node: ast.AST):
    """``ast.walk`` that does not descend into nested function/class defs."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


class _TaintTracker:
    """Fixed-point propagation of *thread-varying* values through a kernel.

    Seeds: ``ctx.tid``, ``ctx.gtid`` and the return value of any
    ``ctx.atomic_*`` call (its value depends on the thread schedule). Any
    name assigned from an expression containing a tainted value becomes
    tainted; ``for`` targets inherit the taint of the iterable.
    """

    def __init__(self, func: ast.FunctionDef):
        self.func = func
        self.tainted: set[str] = set()
        self._stabilize()

    def _stabilize(self) -> None:
        for _ in range(32):  # fixed point; kernels are small
            before = len(self.tainted)
            for node in _walk_no_nested_functions(self.func):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    value = node.value
                    if value is None:
                        continue
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    if isinstance(node, ast.AugAssign):
                        # x += tainted taints x; x += uniform keeps x
                        already = any(n in self.tainted for n in _assigned_names(node.target))
                        if not already and not self.is_tainted(value):
                            continue
                    if self.is_tainted(value) or isinstance(node, ast.AugAssign):
                        for t in targets:
                            self.tainted.update(_assigned_names(t))
                elif isinstance(node, ast.For):
                    if self.is_tainted(node.iter):
                        self.tainted.update(_assigned_names(node.target))
                elif isinstance(node, (ast.comprehension,)):
                    if self.is_tainted(node.iter):
                        self.tainted.update(_assigned_names(node.target))
            if len(self.tainted) == before:
                return

    def is_tainted(self, expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if _is_ctx_attr(node, ("tid", "gtid")):
                return True
            if _is_ctx_method_call(node, _ATOMICS):
                return True
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return True
        return False


# --------------------------------------------------------------------------
# kernel-scope checks
# --------------------------------------------------------------------------


class _KernelChecker:
    def __init__(self, func: ast.FunctionDef, path: str, add):
        self.func = func
        self.path = path
        self.add = add
        self.taint = _TaintTracker(func)
        #: per-thread fresh containers: stores into them are thread-private
        self.private: set[str] = self._collect_private()

    def _collect_private(self) -> set[str]:
        private: set[str] = set()
        for node in _walk_no_nested_functions(self.func):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)):
                    for t in targets:
                        private.update(_assigned_names(t))
        return private

    def _finding(self, rule: str, node: ast.AST, message: str) -> None:
        sev = RULES[rule][0]
        self.add(
            Finding(
                rule=rule,
                severity=sev,
                path=self.path,
                line=getattr(node, "lineno", self.func.lineno),
                col=getattr(node, "col_offset", 0),
                message=message,
                kernel=self.func.name,
            )
        )

    # -- KL101 / KL102 share a guarded walk ---------------------------------
    def run(self) -> None:
        self._walk(self.func.body, divergent=False)
        self._check_loops_accounting()

    def _walk(self, stmts: list[ast.stmt], divergent: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                if divergent:
                    self._finding(
                        "KL101",
                        stmt,
                        "barrier reached under thread-varying control flow — "
                        "threads of the block may not converge on this yield "
                        "(undefined behaviour on real hardware)",
                    )
                continue
            self._check_store(stmt, divergent)
            if isinstance(stmt, ast.If):
                branch_div = divergent or self.taint.is_tainted(stmt.test)
                self._walk(stmt.body, branch_div)
                self._walk(stmt.orelse, branch_div)
            elif isinstance(stmt, ast.While):
                branch_div = divergent or self.taint.is_tainted(stmt.test)
                self._walk(stmt.body, branch_div)
            elif isinstance(stmt, ast.For):
                branch_div = divergent or self.taint.is_tainted(stmt.iter)
                self._walk(stmt.body, branch_div)
                self._walk(stmt.orelse, divergent)
            elif isinstance(stmt, (ast.With,)):
                self._walk(stmt.body, divergent)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, divergent)
                for h in stmt.handlers:
                    self._walk(h.body, divergent)
                self._walk(stmt.orelse, divergent)
                self._walk(stmt.finalbody, divergent)

    def _check_store(self, stmt: ast.stmt, divergent: bool) -> None:
        """KL102: uniform-address, unpredicated store to a device array."""
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        else:
            return
        subs: list[ast.Subscript] = []
        for t in targets:
            if isinstance(t, ast.Subscript):
                subs.append(t)
            elif isinstance(t, (ast.Tuple, ast.List)):
                subs.extend(e for e in t.elts if isinstance(e, ast.Subscript))
        for sub in subs:
            base = sub.value
            if isinstance(base, ast.Name) and base.id in self.private:
                continue  # store into a thread-private python container
            if divergent:
                continue  # predicated on a thread-varying condition
            if self.taint.is_tainted(sub.slice):
                continue  # per-thread address
            name = ast.unparse(base) if hasattr(ast, "unparse") else "<array>"
            self._finding(
                "KL102",
                sub,
                f"every thread stores to the same address {name}"
                f"[{ast.unparse(sub.slice)}] in the same phase — a "
                "write-write race; use ctx.atomic_* or predicate on ctx.tid",
            )

    # -- KL103 --------------------------------------------------------------
    def _check_loops_accounting(self) -> None:
        for node in _walk_no_nested_functions(self.func):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            has_accounting = False
            has_work = False
            for sub in node.body:
                for inner in _walk_no_nested_functions(sub):
                    if _is_ctx_method_call(inner, ("work",) + _ATOMICS):
                        has_accounting = True
                    elif isinstance(inner, (ast.Call, ast.Subscript)):
                        has_work = True
            if has_work and not has_accounting:
                self._finding(
                    "KL103",
                    node,
                    "loop performs memory/compute work but never calls "
                    "ctx.work() — the cost model will see zero cycles for it",
                )


# --------------------------------------------------------------------------
# module-scope checks
# --------------------------------------------------------------------------


def _is_np_attr(node: ast.AST, names) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in names
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _check_dtypes(tree: ast.Module, path: str, add) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        kw = {k.arg: k.value for k in node.keywords if k.arg}
        # KL201: constructor without dtype
        if _is_np_attr(node.func, _CTORS_DTYPE_ARG2 | _CTORS_DTYPE_ARG3):
            need = 2 if node.func.attr in _CTORS_DTYPE_ARG2 else 3
            if "dtype" not in kw and len(node.args) < need:
                add(
                    Finding(
                        rule="KL201",
                        severity=RULES["KL201"][0],
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"np.{node.func.attr}(...) without an explicit dtype "
                            "defaults to float64 — state the dtype (pipeline "
                            "arrays are int64/uint8 by contract)"
                        ),
                    )
                )
        # KL202: narrowing dtype, either dtype=np.int32 or .astype(np.int32)
        narrow = None
        for candidate in list(node.args) + list(kw.values()):
            if _is_np_attr(candidate, _NARROW_DTYPES):
                narrow = candidate.attr
            elif isinstance(candidate, ast.Constant) and candidate.value in _NARROW_DTYPES:
                narrow = candidate.value
        is_astype = isinstance(node.func, ast.Attribute) and node.func.attr == "astype"
        takes_dtype = is_astype or _is_np_attr(
            node.func, _CTORS_DTYPE_ARG2 | _CTORS_DTYPE_ARG3 | {"array", "asarray", "arange"}
        ) or "dtype" in kw
        if narrow and takes_dtype:
            add(
                Finding(
                    rule="KL202",
                    severity=RULES["KL202"][0],
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"narrowing to {narrow}: triplet/index arrays are int64 "
                        "by contract — chromosome-scale offsets overflow 32 bits"
                    ),
                )
            )


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------


def _is_kernel(func: ast.FunctionDef, registered: set[str]) -> bool:
    if func.name in registered:
        return True
    args = func.args.posonlyargs + func.args.args
    if not args or args[0].arg != "ctx":
        return False
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _walk_no_nested_functions(func)
    )


def _registered_kernels(tree: ast.Module) -> set[str]:
    """Names listed in a module-level ``__simt_kernels__`` tuple/list."""
    out: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__simt_kernels__":
                    if isinstance(node.value, (ast.Tuple, ast.List)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                                out.add(elt.value)
    return out


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    if not (1 <= finding.line <= len(lines)):
        return False
    text = lines[finding.line - 1]
    if "simt: ignore" not in text:
        return False
    marker = text.split("simt: ignore", 1)[1]
    if marker.startswith("["):
        rules = marker[1 : marker.index("]")] if "]" in marker else ""
        return finding.rule in {r.strip() for r in rules.split(",")}
    return True


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns suppression-filtered findings."""
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    add = findings.append
    registered = _registered_kernels(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and _is_kernel(node, registered):
            _KernelChecker(node, path, add).run()
    _check_dtypes(tree, path, add)
    lines = source.splitlines()
    kept = [f for f in findings if not _suppressed(f, lines)]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def lint_file(path: str) -> list[Finding]:
    """Lint one ``.py`` file (see :func:`lint_source`)."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def lint_paths(paths, *, select=None, ignore=None) -> list[Finding]:
    """Lint files and/or directory trees of ``*.py`` files.

    ``select``/``ignore`` are iterables of rule ids filtering the output.
    """
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        else:
            files.append(p)
    findings: list[Finding] = []
    for f in sorted(set(files)):
        findings.extend(lint_file(f))
    if select:
        allowed = set(select)
        findings = [f for f in findings if f.rule in allowed]
    if ignore:
        blocked = set(ignore)
        findings = [f for f in findings if f.rule not in blocked]
    return findings


def format_findings(findings) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [f.format() for f in findings]
    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    lines.append(f"{len(findings)} finding(s): {n_err} error(s), {n_warn} warning(s)")
    return "\n".join(lines)


def findings_to_json(findings) -> str:
    """Findings as a JSON array (``gpumem analyze --format json``)."""
    return json.dumps([asdict(f) for f in findings], indent=2)
