"""Static lock-discipline lint for the threaded host layer.

The device side of this repo has :mod:`repro.analysis.kernel_lint`; this
module is its host-side sibling. The batched engine
(:mod:`repro.core.batch`), the single-flight session cache
(:mod:`repro.core.session`) and the observability layer
(:mod:`repro.obs`) are real multi-threaded code, and the PR-4 bugs that
motivated this pass (a duplicate-build race and a ``cache_info()``
iteration race) were both found by hand. This AST pass makes that bug
class machine-checkable.

Lock protocol annotation
------------------------

A class declares which attributes a lock guards with a trailing comment
on the lock's creation line::

    self._lock = threading.Lock()  # guards: _row_indexes, _hits, _misses

Module-level locks use the same convention::

    _session_cache_lock = threading.Lock()  # guards: _session_cache

Both ``threading`` and ``multiprocessing`` lock constructors are
recognized (``Lock()``/``RLock()`` by final call name, so ``mp.Lock()``
and ``get_context("spawn").RLock()`` count), as are the injectable
``new_lock``/``new_rlock`` factories; a lock created that way is tracked
even when its variable name does not contain "lock".

Rules
-----

``CL101`` **guarded attribute outside its lock** *(error, class scope)*
    A ``self.<attr>`` access (read or write) to an attribute listed in a
    ``# guards:`` annotation, in a method body that does not hold the
    declaring lock via ``with self.<lock>:``. ``__init__``/``__new__``
    are exempt (construction is single-threaded by convention).

``CL102`` **inconsistent lock order** *(error, whole-tree scope)*
    Somewhere lock A is acquired while B is held and somewhere else B is
    acquired while A is held (directly or through a longer chain). Two
    threads taking the two paths concurrently can deadlock. The lint
    builds a lock-order graph over every ``with <lock>:`` nesting in the
    linted tree (lock identity is the *name*, lockdep-style: every
    per-row build lock is one lock class) and reports each cycle once.

``CL103`` **blocking call while holding a lock** *(warning)*
    ``Future.result()``, ``Condition/Event.wait()``, ``Thread.join()``,
    ``lock.acquire()``, ``Queue.get(timeout=...)``, ``time.sleep()`` or
    ``open()`` inside a ``with <lock>:`` body. A blocked holder stalls
    every waiter; if the blocked-on work needs the same lock, that is a
    deadlock.

``CL104`` **unguarded module-level mutable state** *(warning, module scope)*
    A function mutates a module-level dict/list/set/deque (or rebinds a
    ``global``) without holding any module-level lock. Process-wide
    caches like ``get_session``'s LRU are exactly where this bites.

A finding on a line whose trailing comment contains ``conc: ignore`` (or
``conc: ignore[CL101]`` for one rule) is suppressed; every suppression in
the shipped tree must carry a justification comment.

Run via ``gpumem analyze --host [paths...]`` (or ``--all`` together with
the SIMT kernel lint); see ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

__all__ = [
    "CL_RULES",
    "HostFinding",
    "lint_host_source",
    "lint_host_file",
    "lint_host_paths",
]

#: rule id -> (severity, short description)
CL_RULES = {
    "CL101": ("error", "guarded attribute accessed outside its declared lock"),
    "CL102": ("error", "inconsistent lock acquisition order (potential deadlock)"),
    "CL103": ("warning", "blocking call while holding a lock"),
    "CL104": ("warning", "module-level mutable state mutated without a module lock"),
}

_GUARDS_RE = re.compile(r"#\s*guards:\s*([A-Za-z0-9_,\s]+)")
#: Constructor final names that plainly build a lock. Matched on the last
#: attribute of the call chain, so ``threading.Lock()``,
#: ``multiprocessing.Lock()``, ``mp.RLock()`` and
#: ``get_context("spawn").Lock()`` all qualify.
_LOCK_CTORS = {"Lock", "RLock"}
_LOCK_FACTORIES = {"new_lock", "new_rlock", "lock", "rlock"}
_MUTABLE_CTORS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter",
}
_MUTATOR_METHODS = {
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "pop", "popleft", "popitem", "clear", "remove",
    "discard", "move_to_end",
}
#: construction-time methods where CL101 does not apply
_CTOR_METHODS = {"__init__", "__new__", "__post_init__"}


@dataclass(frozen=True)
class HostFinding:
    """One host-concurrency finding (CI-gate-ready provenance)."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    scope: str | None = None

    def format(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        scope = f" [{self.scope}]" if self.scope else ""
        return f"{where}: {self.rule} {self.severity}:{scope} {self.message}"


@dataclass(frozen=True)
class LockEdge:
    """``held -> acquired`` observation: one nesting site in the source."""

    src: str
    dst: str
    path: str
    line: int
    col: int
    scope: str


def _final_name(expr: ast.AST) -> str | None:
    """The trailing identifier of a Name/Attribute chain, else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _looks_like_lock_ctor(value: ast.AST) -> bool:
    """RHS that plainly constructs a lock (threading.Lock(), new_lock(...))."""
    if not isinstance(value, ast.Call):
        return False
    name = _final_name(value.func)
    return name in _LOCK_CTORS or name in _LOCK_FACTORIES


def _walk_no_nested_functions(node: ast.AST):
    """``ast.walk`` that does not descend into nested function/class defs."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _blocking_call(node: ast.Call) -> str | None:
    """A human-readable label if ``node`` is a known blocking call."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open()"
        if func.id in ("sleep", "wait"):
            return f"{func.id}()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    recv = func.value
    if attr == "sleep":
        return "time.sleep()" if _final_name(recv) == "time" else None
    if attr == "result":
        return "Future.result()"
    if attr == "wait":
        return f"{_final_name(recv) or '<obj>'}.wait()"
    if attr == "acquire":
        return f"{_final_name(recv) or '<lock>'}.acquire()"
    if attr == "join":
        # str.join / os.path.join are not blocking; Thread/Process.join is.
        if isinstance(recv, ast.Constant):
            return None
        if _final_name(recv) in ("os", "path", "posixpath", "ntpath"):
            return None
        return f"{_final_name(recv) or '<obj>'}.join()"
    if attr == "get":
        # dict.get is everywhere; only a timeout/block kwarg marks a queue.
        if any(k.arg in ("timeout", "block") for k in node.keywords):
            return f"{_final_name(recv) or '<queue>'}.get(timeout=...)"
        return None
    return None


class _ModuleAnalysis:
    """One module's pass: findings (CL101/103/104) plus lock-order edges."""

    def __init__(self, tree: ast.Module, path: str, lines: list[str]):
        self.tree = tree
        self.path = path
        self.lines = lines
        self.modname = os.path.splitext(os.path.basename(path))[0]
        self.findings: list[HostFinding] = []
        self.edges: list[LockEdge] = []
        #: module-level lock names
        self.module_locks: set[str] = set()
        #: module-level mutable names (containers, or global-rebound scalars)
        self.module_mutables: set[str] = set()
        self.module_names: set[str] = set()
        #: class name -> attr names assigned from a lock constructor
        #: (``self._mu = multiprocessing.Lock()``); lets :meth:`lock_key`
        #: recognize locks whose names do not contain "lock".
        self.class_lock_attrs: dict[str, set[str]] = {}
        self._collect_module_state()

    # -- annotation / declaration harvesting --------------------------------
    def _guards_on_line(self, lineno: int) -> list[str] | None:
        if not (1 <= lineno <= len(self.lines)):
            return None
        match = _GUARDS_RE.search(self.lines[lineno - 1])
        if not match:
            return None
        return [n.strip() for n in match.group(1).split(",") if n.strip()]

    def _collect_module_state(self) -> None:
        for node in self.tree.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                self.module_names.add(name)
                if _looks_like_lock_ctor(value) or "lock" in name.lower():
                    self.module_locks.add(name)
                elif isinstance(
                    value,
                    (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                     ast.SetComp),
                ) or (
                    isinstance(value, ast.Call)
                    and _final_name(value.func) in _MUTABLE_CTORS
                ):
                    self.module_mutables.add(name)
        # Scalars only count as mutable state once a function rebinds them
        # through ``global`` (e.g. the ``_lru_hits`` counters).
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name in self.module_names and name not in self.module_locks:
                        self.module_mutables.add(name)

    # -- finding / edge emission --------------------------------------------
    def _add(self, rule: str, node: ast.AST, message: str, scope: str) -> None:
        self.findings.append(
            HostFinding(
                rule=rule,
                severity=CL_RULES[rule][0],
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                scope=scope,
            )
        )

    def run(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                _ClassChecker(self, node).run()
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _ScopeWalker(self, scope=node.name).walk(node.body, ())

    # -- lock identity --------------------------------------------------------
    def lock_key(self, expr: ast.AST, owner: str | None) -> str | None:
        """Canonical lock-class key of a with-item, or None if not a lock.

        ``with self.X:`` inside class C keys as ``C.X``; a bare name keys
        as ``<module>.N`` when module-level, else ``<owner>.N``. Identity
        is by *name* (lockdep-style lock classes), so e.g. every per-row
        build lock of a session is one class. A name qualifies either by
        containing "lock" or by having been assigned from a recognized
        lock constructor (``threading``/``multiprocessing`` ``Lock`` /
        ``RLock``, or a ``new_lock``-style factory).
        """
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and owner:
                name = expr.attr
                cls = owner.split(".", 1)[0]
                if "lock" in name.lower() or name in self.class_lock_attrs.get(cls, ()):
                    return f"{cls}.{name}"
            return None
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.module_locks:
                return f"{self.modname}.{name}"
            if "lock" in name.lower():
                prefix = owner.split(".", 1)[0] if owner else self.modname
                return f"{prefix}.{name}"
        return None


class _ScopeWalker:
    """Held-lock-aware statement walker shared by class and module scopes."""

    def __init__(
        self,
        module: _ModuleAnalysis,
        scope: str,
        guarded_by: dict[str, str] | None = None,
        class_name: str | None = None,
        check_guards: bool = True,
    ):
        self.m = module
        self.scope = scope
        self.guarded_by = guarded_by or {}
        self.class_name = class_name
        self.check_guards = check_guards

    # -- statement recursion ---------------------------------------------------
    def walk(self, stmts: list[ast.stmt], held: tuple[str, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def may run on another thread (worker closures):
                # analyze it with an empty held set.
                self.walk(stmt.body, ())
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.With):
                new_held = held
                for item in stmt.items:
                    self._check_exprs(item.context_expr, new_held)
                    key = self.m.lock_key(item.context_expr, self.class_name
                                          or self.scope)
                    if key is not None:
                        for h in new_held:
                            if h != key:
                                self.m.edges.append(
                                    LockEdge(h, key, self.m.path, stmt.lineno,
                                             stmt.col_offset, self.scope)
                                )
                        new_held = new_held + (key,)
                self.walk(stmt.body, new_held)
                continue
            if isinstance(stmt, ast.If):
                self._check_exprs(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_exprs(stmt.iter, held)
                self._check_store_target(stmt.target, held, stmt)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
                continue
            if isinstance(stmt, ast.While):
                self._check_exprs(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
                continue
            if isinstance(stmt, ast.Try):
                self.walk(stmt.body, held)
                for handler in stmt.handlers:
                    self.walk(handler.body, held)
                self.walk(stmt.orelse, held)
                self.walk(stmt.finalbody, held)
                continue
            # leaf statement: expression-level checks + mutation checks
            self._check_mutation(stmt, held)
            self._check_exprs(stmt, held)

    # -- expression-level checks ----------------------------------------------
    def _check_exprs(self, node: ast.AST, held: tuple[str, ...]) -> None:
        for sub in _walk_no_nested_functions(node):
            if (
                self.check_guards
                and isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and sub.attr in self.guarded_by
            ):
                guard = self.guarded_by[sub.attr]
                key = f"{self.class_name}.{guard}"
                if key not in held:
                    self.m._add(
                        "CL101", sub,
                        f"self.{sub.attr} is declared '# guards:' by "
                        f"self.{guard} but is accessed without holding it "
                        f"(wrap in 'with self.{guard}:')",
                        self.scope,
                    )
            if isinstance(sub, ast.Call) and held:
                label = _blocking_call(sub)
                if label is not None:
                    self.m._add(
                        "CL103", sub,
                        f"blocking call {label} while holding "
                        f"{', '.join(held)} — waiters stall behind the "
                        "blocked holder (deadlock if the blocked-on work "
                        "needs the same lock)",
                        self.scope,
                    )

    def _check_store_target(self, target: ast.AST, held, stmt) -> None:
        self._check_exprs(target, held)

    # -- CL104 ------------------------------------------------------------------
    def _module_lock_held(self, held: tuple[str, ...]) -> bool:
        return any(
            h.startswith(f"{self.m.modname}.")
            and h.split(".", 1)[1] in self.m.module_locks
            for h in held
        )

    def _check_mutation(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        mutated: list[tuple[str, ast.AST]] = []
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            for t in ([target] if not isinstance(target, (ast.Tuple, ast.List))
                      else target.elts):
                if isinstance(t, ast.Name) and t.id in self.m.module_mutables:
                    mutated.append((t.id, t))
                elif (
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id in self.m.module_mutables
                ):
                    mutated.append((t.value.id, t))
        for sub in _walk_no_nested_functions(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATOR_METHODS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in self.m.module_mutables
            ):
                mutated.append((sub.func.value.id, sub))
        if not mutated or self._module_lock_held(held):
            return
        for name, node in mutated:
            locks = ", ".join(sorted(self.m.module_locks)) or "none declared"
            self.m._add(
                "CL104", node,
                f"module-level mutable {name!r} mutated without holding a "
                f"module lock (module locks: {locks})",
                self.scope,
            )


class _ClassChecker:
    """Harvest a class's ``# guards:`` protocol and check every method."""

    def __init__(self, module: _ModuleAnalysis, cls: ast.ClassDef):
        self.m = module
        self.cls = cls
        #: guarded attr name -> declaring lock attr name
        self.guarded_by: dict[str, str] = {}
        self._harvest()

    def _harvest(self) -> None:
        for method in self.cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in _walk_no_nested_functions(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if _looks_like_lock_ctor(node.value):
                        self.m.class_lock_attrs.setdefault(
                            self.cls.name, set()
                        ).add(target.attr)
                    guarded = self.m._guards_on_line(node.lineno)
                    if guarded:
                        for attr in guarded:
                            self.guarded_by[attr] = target.attr

    def run(self) -> None:
        for method in self.cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _ScopeWalker(
                self.m,
                scope=f"{self.cls.name}.{method.name}",
                guarded_by=self.guarded_by,
                class_name=self.cls.name,
                check_guards=method.name not in _CTOR_METHODS,
            )
            walker.walk(method.body, ())


# --------------------------------------------------------------------------
# lock-order graph / CL102
# --------------------------------------------------------------------------


def _order_cycles(edges: list[LockEdge]) -> list[HostFinding]:
    """One CL102 finding per distinct cycle in the aggregated order graph."""
    graph: dict[str, dict[str, LockEdge]] = {}
    for edge in edges:
        graph.setdefault(edge.src, {}).setdefault(edge.dst, edge)

    def path_between(start: str, goal: str) -> list[LockEdge] | None:
        seen = {start}
        stack: list[tuple[str, list[LockEdge]]] = [(start, [])]
        while stack:
            node, path = stack.pop()
            for nxt, edge in sorted(graph.get(node, {}).items()):
                if nxt == goal:
                    return path + [edge]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [edge]))
        return None

    findings: list[HostFinding] = []
    reported: set[frozenset] = set()
    for edge in edges:
        back = path_between(edge.dst, edge.src)
        if back is None:
            continue
        cycle = [edge] + back
        signature = frozenset((e.src, e.dst) for e in cycle)
        if signature in reported:
            continue
        reported.add(signature)
        chain = "; ".join(
            f"{e.src} -> {e.dst} at {e.path}:{e.line} ({e.scope})"
            for e in cycle
        )
        findings.append(
            HostFinding(
                rule="CL102",
                severity=CL_RULES["CL102"][0],
                path=edge.path,
                line=edge.line,
                col=edge.col,
                message=(
                    "inconsistent lock order — two threads taking these "
                    f"paths concurrently can deadlock: {chain}"
                ),
                scope=edge.scope,
            )
        )
    return findings


# --------------------------------------------------------------------------
# suppression + entry points
# --------------------------------------------------------------------------


def _suppressed(finding: HostFinding, lines: list[str]) -> bool:
    if not (1 <= finding.line <= len(lines)):
        return False
    text = lines[finding.line - 1]
    if "conc: ignore" not in text:
        return False
    marker = text.split("conc: ignore", 1)[1]
    if marker.startswith("["):
        rules = marker[1 : marker.index("]")] if "]" in marker else ""
        return finding.rule in {r.strip() for r in rules.split(",")}
    return True


def _analyze(source: str, path: str) -> tuple[list[HostFinding], list[LockEdge], list[str]]:
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    analysis = _ModuleAnalysis(tree, path, lines)
    analysis.run()
    kept = [f for f in analysis.findings if not _suppressed(f, lines)]
    return kept, analysis.edges, lines


def lint_host_source(source: str, path: str = "<string>") -> list[HostFinding]:
    """Lint one module's source (CL102 restricted to this module's graph)."""
    findings, edges, lines = _analyze(source, path)
    findings += [f for f in _order_cycles(edges) if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_host_file(path: str) -> list[HostFinding]:
    """Lint one ``.py`` file (see :func:`lint_host_source`)."""
    with open(path, encoding="utf-8") as fh:
        return lint_host_source(fh.read(), path)


def lint_host_paths(paths, *, select=None, ignore=None) -> list[HostFinding]:
    """Lint files/trees; the CL102 order graph aggregates across all files."""
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                files.extend(
                    os.path.join(root, n) for n in sorted(names)
                    if n.endswith(".py")
                )
        else:
            files.append(p)
    findings: list[HostFinding] = []
    edges: list[LockEdge] = []
    lines_by_path: dict[str, list[str]] = {}
    for f in sorted(set(files)):
        with open(f, encoding="utf-8") as fh:
            source = fh.read()
        file_findings, file_edges, lines = _analyze(source, f)
        findings.extend(file_findings)
        edges.extend(file_edges)
        lines_by_path[f] = lines
    findings.extend(
        f for f in _order_cycles(edges)
        if not _suppressed(f, lines_by_path.get(f.path, []))
    )
    if select:
        allowed = set(select)
        findings = [f for f in findings if f.rule in allowed]
    if ignore:
        blocked = set(ignore)
        findings = [f for f in findings if f.rule not in blocked]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
