"""Pytest plugin: run host-layer tests under the runtime lock tracker.

Register it from a ``conftest.py``::

    pytest_plugins = ["repro.analysis.pytest_lock_tracker"]

Two ways in (mirroring ``pytest_sanitizer``'s device fixtures):

- Take the ``lock_tracker`` fixture: a fresh raise-mode
  :class:`repro.analysis.lock_tracker.LockTracker` is installed as the
  process lock factory (with blocking probes), so every
  ``MemSession``/``BatchRunner``/executor lock the test creates is
  tracked. Lock-order inversions raise
  :class:`repro.errors.LockOrderError` at the offending acquisition; any
  findings left at teardown (hold-while-blocked is collect-only) fail the
  test.
- Set ``REPRO_LOCK_TRACKER=1`` (CI's ``tests-locktracker`` leg): one
  process-global tracker covers *every* test in the run without touching
  any test body; an autouse fixture fails each test that contributed new
  findings.

For tests that *expect* findings, build a ``LockTracker(mode="collect")``
directly and inject ``tracker.lock`` as the ``lock_factory``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import lock_tracker as lt


@pytest.fixture
def lock_tracker():
    """A raise-mode tracker installed as the process-wide lock factory."""
    tracker = lt.LockTracker(mode="raise")
    lt.install(tracker)
    tracker.install_blocking_probes()
    try:
        yield tracker
    finally:
        tracker.remove_blocking_probes()
        lt.uninstall()
    assert not tracker.findings, (
        "lock tracker found concurrency hazards:\n" + tracker.format_findings()
    )


@pytest.fixture(autouse=True)
def _env_lock_tracker():
    """``REPRO_LOCK_TRACKER=1`` mode: per-test accounting on the global tracker.

    The tracker itself is created lazily by the first ``new_lock`` call
    (see :func:`repro.analysis.lock_tracker.active_tracker`); this fixture
    only checks that no *new* findings appeared during the test, so one
    flagged test does not fail every test after it.
    """
    if not os.environ.get("REPRO_LOCK_TRACKER"):
        yield
        return
    tracker = lt.active_tracker()
    before = len(tracker.findings) if tracker is not None else 0
    yield
    tracker = lt.active_tracker()
    if tracker is None:
        return
    fresh = tracker.findings[before:]
    assert not fresh, (
        "lock tracker found concurrency hazards during this test:\n"
        + "\n".join(f.format() for f in fresh)
    )
