"""Runtime resource-lifecycle tracker for IPC primitives.

The static pass (:mod:`repro.analysis.resource_lint`) reasons about the
lifetimes it can see in one function body; this module watches the
resources that actually get created. A :class:`ResourceTracker` receives
hook calls from the library's IPC seams — shared-memory create/attach/
close/unlink in :mod:`repro.sequence.packed`, store mmap opens and
file-lock acquire/release in :mod:`repro.index.store` — and keeps a live
table of open resources with per-site + pid provenance.

Two kinds of output:

- **live misuse findings**, recorded the moment they happen: double close
  of the same segment, double unlink, unlink of a never-created name,
  lock release without acquire. In ``mode="raise"`` these raise
  :class:`repro.errors.ResourceLeakError` immediately.
- an **end-of-run audit** (:meth:`ResourceTracker.audit`): any resource
  still live that no long-lived holder has :meth:`adopt`-ed is a leak.
  The process-tier reference registry in :mod:`repro.core.procpool` and
  the warm tier of :class:`repro.index.store.IndexStore` *deliberately*
  keep segments/mmaps alive across calls — they adopt their resources so
  the audit distinguishes "cached by design" from "forgotten".

Every event also feeds ``res.*`` metrics (see ``docs/observability.md``)
into a :class:`repro.obs.metrics.MetricsRegistry`-compatible registry.
In procpool workers, :meth:`bind_metrics` points the tracker at the
worker's :class:`repro.obs.shipping.WorkerObs` registry so the counters
ride the existing ``ObsPayload`` freight back to the parent.

Switch on process-wide with ``REPRO_RESOURCE_TRACKER=1`` (how the CI
``tests-resource`` leg runs the core + index suites), or per-test via the
``resource_tracker`` fixture in
:mod:`repro.analysis.pytest_resource_tracker`.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass

from repro.errors import ResourceLeakError

__all__ = [
    "ResourceRecord",
    "ResourceFinding",
    "ResourceTracker",
    "active_tracker",
    "install",
    "uninstall",
    "shm_created",
    "shm_attached",
    "shm_closed",
    "shm_unlinked",
    "mmap_opened",
    "mmap_closed",
    "lock_acquired",
    "lock_released",
    "adopt",
    "disown",
]


def _call_site(depth: int) -> str:
    """Cheap ``file:line`` of the calling frame (no stack walk)."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallow stacks in exotic embeds
        return "<unknown>"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


@dataclass(frozen=True)
class ResourceRecord:
    """One live resource: what, where, and which process opened it."""

    kind: str  # "shm" | "shm-attach" | "mmap" | "lock"
    name: str
    pid: int
    site: str

    def format(self) -> str:
        return f"{self.kind} {self.name!r} (pid {self.pid}, opened at {self.site})"


@dataclass(frozen=True)
class ResourceFinding:
    """One runtime misuse finding (``collect`` mode keeps these)."""

    kind: str  # "double-close" | "double-unlink" | ...
    message: str
    name: str
    pid: int
    site: str

    def format(self) -> str:
        return f"[{self.kind}] {self.message} (pid {self.pid}, {self.site})"


class ResourceTracker:
    """Process-wide recorder of IPC resource lifetimes.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) raises :class:`ResourceLeakError` at the
        misuse site (double close/unlink, unbalanced release) and from a
        failed :meth:`audit`; ``"collect"`` records
        :class:`ResourceFinding` entries instead and :meth:`audit`
        returns the leaks without raising.
    metrics:
        Optional metrics registry for live ``res.*`` series; defaults to
        a fresh :class:`repro.obs.metrics.MetricsRegistry`. Its internal
        locks are plain (never tracked), so emission cannot recurse.
    """

    def __init__(self, mode: str = "raise", metrics=None):
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        self.mode = mode
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self._lock = threading.Lock()  # guards: _live, _adopted, _unlinked, findings
        #: (kind, name) -> record for every currently-open resource
        self._live: dict[tuple[str, str], ResourceRecord] = {}
        #: (kind, name) -> holder label for deliberately long-lived resources
        self._adopted: dict[tuple[str, str], str] = {}
        #: shm names already unlinked (to catch double-unlink after close)
        self._unlinked: set[str] = set()
        self.findings: list[ResourceFinding] = []

    # -- metrics ----------------------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Redirect ``res.*`` emission into ``registry``.

        In a procpool worker this is the :class:`WorkerObs` registry, so
        resource counters ride the ``ObsPayload`` delta freight back to
        the parent tracer like every other ``proc.*`` series.
        """
        self.metrics = registry

    def _count(self, name: str, **labels) -> None:
        metrics = self.metrics
        if not getattr(metrics, "enabled", True):
            return
        metrics.counter(name, **labels).inc()

    def _gauge_live(self, kind: str) -> None:
        metrics = self.metrics
        if not getattr(metrics, "enabled", True):
            return
        with self._lock:
            live = sum(1 for k, _ in self._live if k == kind)
        metrics.gauge(f"res.{kind}.live").set(live)

    # -- shared memory -----------------------------------------------------------
    def shm_created(self, name: str, nbytes: int = 0) -> None:
        """A named segment was created (owner side)."""
        record = ResourceRecord("shm", name, os.getpid(), _call_site(3))
        with self._lock:
            self._live[("shm", name)] = record
            self._unlinked.discard(name)
        self._count("res.shm.created")
        self._gauge_live("shm")

    def shm_attached(self, name: str) -> None:
        """An existing segment was attached (consumer side)."""
        record = ResourceRecord("shm-attach", name, os.getpid(), _call_site(3))
        with self._lock:
            self._live[("shm-attach", name)] = record
        self._count("res.shm.attached")

    def shm_closed(self, name: str, *, owner: bool) -> None:
        """A segment mapping was closed; flags double-close of an attach.

        An *owner* close only unmaps — the named segment survives in the
        kernel until :meth:`shm_unlinked`, so the ``("shm", name)`` record
        stays live (close-without-unlink is exactly the leak the audit
        must see). An *attacher* close retires its ``shm-attach`` record;
        closing an attachment that is not live is a double-close.
        """
        self._count("res.shm.closed")
        if owner:
            return
        with self._lock:
            known = self._live.pop(("shm-attach", name), None)
        if known is None:
            self._misuse(
                "double-close", name,
                f"shared-memory attachment {name!r} closed twice (or closed "
                "without a tracked attach) — the second close is a lifetime "
                "bug even where the stdlib tolerates it",
            )

    def shm_unlinked(self, name: str) -> None:
        """The backing segment was destroyed; flags double-unlink."""
        with self._lock:
            already = name in self._unlinked
            self._unlinked.add(name)
            # Unlink implies the owner mapping is done with the name even
            # if close was skipped; drop a live owner record quietly (the
            # kernel object is gone, nothing left to leak).
            self._live.pop(("shm", name), None)
        self._count("res.shm.unlinked")
        self._gauge_live("shm")
        if already:
            self._misuse(
                "double-unlink", name,
                f"shared-memory segment {name!r} unlinked twice — the second "
                "unlink races with name reuse and raises FileNotFoundError "
                "on platforms that enforce it",
            )

    # -- mmap-backed bundles -----------------------------------------------------
    def mmap_opened(self, path: str) -> None:
        """A store bundle was opened with mmap-backed arrays."""
        record = ResourceRecord("mmap", path, os.getpid(), _call_site(3))
        with self._lock:
            self._live[("mmap", path)] = record
        self._count("res.mmap.opened")
        self._gauge_live("mmap")

    def mmap_closed(self, path: str) -> None:
        """The owning scope dropped its mmap-backed bundle."""
        with self._lock:
            self._live.pop(("mmap", path), None)
        self._count("res.mmap.closed")
        self._gauge_live("mmap")

    # -- file locks --------------------------------------------------------------
    def lock_acquired(self, path: str) -> None:
        """An fcntl file lock was taken on ``path``."""
        record = ResourceRecord("lock", path, os.getpid(), _call_site(3))
        with self._lock:
            self._live[("lock", path)] = record
        self._count("res.lock.acquired")
        self._gauge_live("lock")

    def lock_released(self, path: str) -> None:
        """The lock on ``path`` was released; flags unbalanced release."""
        with self._lock:
            known = self._live.pop(("lock", path), None)
        self._count("res.lock.released")
        self._gauge_live("lock")
        if known is None:
            self._misuse(
                "release-without-acquire", path,
                f"file lock on {path!r} released without a tracked acquire",
            )

    # -- adoption ----------------------------------------------------------------
    def adopt(self, kind: str, name: str, holder: str) -> None:
        """Mark a live resource as deliberately long-lived.

        ``holder`` names the registry/cache that owns it (e.g.
        ``"procpool._shared_refs"``). Adopted resources are exempt from
        :meth:`audit` until :meth:`disown`-ed — caches keep segments
        alive by design; the audit's job is catching the *forgotten*.
        """
        with self._lock:
            self._adopted[(kind, name)] = holder

    def disown(self, kind: str, name: str) -> None:
        """Undo :meth:`adopt`: the resource must now be cleaned up."""
        with self._lock:
            self._adopted.pop((kind, name), None)

    # -- findings / audit --------------------------------------------------------
    def _misuse(self, kind: str, name: str, message: str) -> None:
        finding = ResourceFinding(
            kind=kind, message=message, name=name,
            pid=os.getpid(), site=_call_site(3),
        )
        with self._lock:
            self.findings.append(finding)
        self._count("res.misuse", kind=kind)
        if self.mode == "raise":
            raise ResourceLeakError(finding.format())

    def live_snapshot(self) -> tuple[tuple[str, str], ...]:
        """Keys of currently-live non-adopted resources (for baselining)."""
        with self._lock:
            return tuple(k for k in self._live if k not in self._adopted)

    def leaks(self, *, baseline=()) -> list[ResourceRecord]:
        """Live, non-adopted resources beyond ``baseline`` (audit core)."""
        base = set(baseline)
        with self._lock:
            return [
                record
                for key, record in sorted(self._live.items())
                if key not in self._adopted and key not in base
            ]

    def audit(self, *, baseline=()) -> list[ResourceRecord]:
        """End-of-run leak check.

        Returns the leaked records; in ``mode="raise"`` a non-empty
        result raises :class:`ResourceLeakError` carrying them. Pass a
        ``baseline`` from :meth:`live_snapshot` to audit only the delta
        (how the pytest plugin scopes leaks to one test).
        """
        leaked = self.leaks(baseline=baseline)
        if leaked:
            self._count("res.leaks")
            if self.mode == "raise":
                detail = "; ".join(r.format() for r in leaked)
                raise ResourceLeakError(
                    f"{len(leaked)} resource(s) still live at audit: {detail}",
                    leaks=leaked,
                )
        return leaked

    def format_findings(self) -> str:
        with self._lock:
            findings = list(self.findings)
        lines = [f.format() for f in findings]
        lines.append(f"{len(findings)} resource finding(s)")
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all state (a fresh run)."""
        with self._lock:
            self._live.clear()
            self._adopted.clear()
            self._unlinked.clear()
            self.findings.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            return (
                f"ResourceTracker(mode={self.mode!r}, live={len(self._live)}, "
                f"adopted={len(self._adopted)}, findings={len(self.findings)})"
            )


# --------------------------------------------------------------------------
# process-wide plumbing + hook seams
# --------------------------------------------------------------------------

_active_tracker: ResourceTracker | None = None
_env_checked = False
_install_lock = threading.Lock()  # guards: _active_tracker, _env_checked


def install(tracker: ResourceTracker) -> None:
    """Make ``tracker`` the process-wide sink behind the hook functions."""
    global _active_tracker
    with _install_lock:
        _active_tracker = tracker


def uninstall() -> None:
    """Remove the installed tracker (subsequent events are no-ops)."""
    global _active_tracker
    with _install_lock:
        _active_tracker = None


def active_tracker() -> ResourceTracker | None:
    """The installed tracker, honouring ``REPRO_RESOURCE_TRACKER=1`` lazily.

    The environment path is how CI's ``tests-resource`` leg (and spawned
    procpool workers, which inherit the environment) run under the
    tracker without touching any call site: the first hook call creates a
    process-global raise-mode tracker (``REPRO_RESOURCE_TRACKER_MODE``
    overrides).
    """
    global _active_tracker, _env_checked
    with _install_lock:
        if _active_tracker is None and not _env_checked:
            _env_checked = True
            env = os.environ.get("REPRO_RESOURCE_TRACKER", "").lower()
            if env in ("1", "true", "on"):
                _active_tracker = ResourceTracker(
                    mode=os.environ.get("REPRO_RESOURCE_TRACKER_MODE", "raise")
                )
        return _active_tracker


# Module-level hook seams: library code calls these unconditionally and
# pays one function call + one None check when no tracker is installed —
# the same cost profile as lock_tracker.new_lock. Each forwards with the
# caller two frames up (hook frame + tracker method), which is what the
# _call_site(3) inside the tracker methods resolves to.


def shm_created(name: str, nbytes: int = 0) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.shm_created(name, nbytes)


def shm_attached(name: str) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.shm_attached(name)


def shm_closed(name: str, *, owner: bool) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.shm_closed(name, owner=owner)


def shm_unlinked(name: str) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.shm_unlinked(name)


def mmap_opened(path: str) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.mmap_opened(str(path))


def mmap_closed(path: str) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.mmap_closed(str(path))


def lock_acquired(path: str) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.lock_acquired(str(path))


def lock_released(path: str) -> None:
    tracker = active_tracker()
    if tracker is not None:
        tracker.lock_released(str(path))


def adopt(kind: str, name: str, holder: str) -> None:
    """Adoption seam for long-lived registries (no-op without a tracker)."""
    tracker = active_tracker()
    if tracker is not None:
        tracker.adopt(kind, str(name), holder)


def disown(kind: str, name: str) -> None:
    """Disown seam, pairing :func:`adopt`."""
    tracker = active_tracker()
    if tracker is not None:
        tracker.disown(kind, str(name))
