"""Runtime SIMT sanitizer: ThreadSanitizer-style race detection per barrier.

The simulator's execution model makes the classic GPU memory model checkable
exactly: within one barrier phase of one block, thread order is unspecified
(and deliberately shuffled), so two threads touching the same address in the
same phase — where at least one access is a plain (non-atomic) write — is a
data race on real hardware, whatever the shuffle happened to produce.

The sanitizer is opt-in and zero-cost when off:

>>> from repro.analysis.sanitizer import Sanitizer
>>> from repro.gpu.kernel import Device
>>> san = Sanitizer()
>>> dev = Device(spec, sanitizer=san)      # doctest: +SKIP
>>> dev.launch(kernel, grid, block, arr)   # doctest: +SKIP
>>> san.findings                           # RaceFinding records, if any

When a :class:`~repro.gpu.kernel.Device` carries a sanitizer, the executor

- wraps every ``np.ndarray`` launch argument and every
  :meth:`~repro.gpu.memory.SharedMemory.array` allocation in a
  :class:`TrackedArray` proxy that records per-(array, address) read/write
  sets attributed to the running thread,
- records ``ctx.atomic_*`` calls as *atomic* accesses (conflict-free among
  themselves, racy against plain writes **and plain reads** — a plain read
  concurrent with an atomic update yields a schedule-dependent value),
- checks the access sets at every barrier and reports conflicts with full
  thread/block/phase provenance,
- records hard barrier divergence (a thread's generator exhausting while
  siblings still yield) alongside the structured
  :class:`~repro.errors.BarrierDivergenceError` the executor raises.

Coverage note: accesses through Python containers (lists/dicts reached via
host-side task objects) and arrays buried inside non-array arguments are not
tracked — shared memory and direct array arguments are the simulated device
surface, and that is where the paper's race classes live.

``mode="collect"`` (default) accumulates findings for later assertion (the
pytest fixture asserts at teardown); ``mode="raise"`` raises
:class:`~repro.errors.RaceConditionError` at the first offending barrier.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np

from repro.errors import BarrierDivergenceError, RaceConditionError

__all__ = ["Access", "RaceFinding", "Sanitizer", "TrackedArray"]

#: address sentinel for slice / fancy-index accesses: conflicts with every
#: address of the same array (conservative — a region access covers unknown
#: elements).
REGION = "<region>"


@dataclass(frozen=True)
class Access:
    """One recorded memory access (normalized address, provenance)."""

    kind: str  # "read" | "write" | "atomic"
    array: str
    index: object
    kernel: str
    block: int
    phase: int
    thread: int


@dataclass(frozen=True)
class RaceFinding:
    """A conflicting access pair-set on one address within one phase."""

    race: str  # "write-write" | "read-write" | "atomic-plain"
    array: str
    index: object
    kernel: str
    block: int
    phase: int
    #: (thread, kind) pairs involved, first few
    accesses: tuple

    def format(self) -> str:
        who = ", ".join(f"t{t}:{k}" for t, k in self.accesses)
        return (
            f"{self.race} race on {self.array}[{self.index}] in kernel "
            f"{self.kernel!r} block {self.block} phase {self.phase} ({who})"
        )


def _normalize_index(index) -> object:
    try:
        return operator.index(index)
    except TypeError:
        pass
    if isinstance(index, tuple):
        return tuple(_normalize_index(i) for i in index)
    return REGION


class TrackedArray:
    """Recording proxy around an ``np.ndarray``.

    Subscript reads/writes are reported to the sanitizer and forwarded to
    the wrapped array, so kernel semantics are unchanged. Everything else
    (``size``, ``dtype``, methods) delegates. The ``_simt_*`` slots are the
    duck-typed contract the executor's atomic helpers use to unwrap without
    importing this module.
    """

    __slots__ = ("_simt_base", "_simt_name", "_simt_san")

    def __init__(self, base: np.ndarray, name: str, sanitizer: "Sanitizer"):
        object.__setattr__(self, "_simt_base", base)
        object.__setattr__(self, "_simt_name", name)
        object.__setattr__(self, "_simt_san", sanitizer)

    def __getitem__(self, index):
        self._simt_san._record("read", self._simt_name, index)
        return self._simt_base[index]

    def __setitem__(self, index, value):
        self._simt_san._record("write", self._simt_name, index)
        self._simt_base[index] = value

    def __getattr__(self, attr):
        return getattr(object.__getattribute__(self, "_simt_base"), attr)

    def __len__(self):
        return len(self._simt_base)

    def __array__(self, *args, **kwargs):
        return np.asarray(self._simt_base, *args, **kwargs)

    def __repr__(self):
        return f"TrackedArray({self._simt_name!r}, {self._simt_base!r})"


class Sanitizer:
    """Collects per-phase access sets and turns conflicts into findings."""

    def __init__(self, *, mode: str = "collect", max_findings: int = 1000):
        if mode not in ("collect", "raise"):
            raise ValueError(f"mode must be 'collect' or 'raise', got {mode!r}")
        self.mode = mode
        self.max_findings = int(max_findings)
        self.findings: list[RaceFinding] = []
        self.divergences: list[BarrierDivergenceError] = []
        self.n_accesses = 0
        self._current: tuple[str, int, int, int] | None = None
        #: (array, index) -> list[(thread, kind)], cleared at every barrier
        self._accesses: dict[tuple, list[tuple[int, str]]] = {}

    # -- wrapping -----------------------------------------------------------
    def wrap(self, array: np.ndarray, name: str) -> TrackedArray:
        if isinstance(array, TrackedArray):
            return array
        return TrackedArray(array, name, self)

    # -- executor hooks -----------------------------------------------------
    def begin_thread_step(self, kernel: str, block: int, phase: int, thread: int) -> None:
        self._current = (kernel, block, phase, thread)

    def end_thread_step(self) -> None:
        self._current = None

    def _record(self, kind: str, array: str, index) -> None:
        if self._current is None:
            return  # host-side access outside any thread step
        thread = self._current[3]
        self.n_accesses += 1
        self._accesses.setdefault((array, _normalize_index(index)), []).append(
            (thread, kind)
        )

    def record_atomic(self, array: str, index) -> None:
        self._record("atomic", array, index)

    def record_divergence(self, error: BarrierDivergenceError) -> None:
        self.divergences.append(error)

    def end_phase(self, kernel: str, block: int, phase: int) -> None:
        """Barrier: check the phase's access sets, then reset them."""
        new: list[RaceFinding] = []
        # Region accesses conflict with anything on the same array.
        regions: dict[str, list[tuple[int, str]]] = {}
        for (array, index), accesses in self._accesses.items():
            if index == REGION:
                regions.setdefault(array, []).extend(accesses)
        for (array, index), accesses in self._accesses.items():
            pool = list(accesses)
            if index != REGION:
                pool += regions.get(array, [])
            race = self._classify(pool)
            if race is not None:
                new.append(
                    RaceFinding(
                        race=race,
                        array=array,
                        index=index,
                        kernel=kernel,
                        block=block,
                        phase=phase,
                        accesses=tuple(sorted(set(pool)))[:8],
                    )
                )
        self._accesses.clear()
        if new:
            room = self.max_findings - len(self.findings)
            self.findings.extend(new[:room])
            if self.mode == "raise":
                raise RaceConditionError(
                    "; ".join(f.format() for f in new[:4]), findings=new
                )

    @staticmethod
    def _classify(accesses: list[tuple[int, str]]) -> str | None:
        """Race class of one address's access list, or None if clean."""
        threads = {t for t, _ in accesses}
        if len(threads) < 2:
            return None
        writers = {t for t, k in accesses if k == "write"}
        readers = {t for t, k in accesses if k == "read"}
        atomics = {t for t, k in accesses if k == "atomic"}
        if len(writers) > 1 or (writers and (readers - writers or atomics - writers)):
            if writers and atomics - writers:
                return "atomic-plain"
            return "write-write" if len(writers) > 1 else "read-write"
        if atomics and readers - atomics:
            return "atomic-plain"
        return None

    # -- reporting ----------------------------------------------------------
    def format_findings(self) -> str:
        lines = [f.format() for f in self.findings]
        lines += [f"barrier divergence: {e}" for e in self.divergences]
        lines.append(
            f"{len(self.findings)} race(s), {len(self.divergences)} "
            f"divergence(s) over {self.n_accesses} tracked accesses"
        )
        return "\n".join(lines)
