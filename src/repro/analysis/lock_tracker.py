"""Runtime lock-order / deadlock sanitizer for the threaded host layer.

The static pass (:mod:`repro.analysis.concurrency_lint`) reasons about
``with`` nesting it can see; this module watches the locks that actually
get taken. A :class:`LockTracker` is an injectable factory for
``threading.Lock``/``RLock`` wrappers that record, per thread, the stack
of currently held locks. From those acquisition stacks it detects, live:

- **lock-order inversions** — lockdep-style: every ``held -> acquired``
  pair becomes an edge in a process-wide order graph (keyed by lock
  *name*, so all per-row build locks are one lock class); an edge that
  closes a cycle raises :class:`repro.errors.LockOrderError` with both
  sides' thread and acquisition-site provenance (``mode="raise"``), or
  records a :class:`LockFinding` (``mode="collect"``). Because the graph
  aggregates across threads *and time*, the AB/BA pattern is caught even
  when the schedule that would actually deadlock is never drawn — the
  same trick the SIMT sanitizer plays with barrier phases.
- **hold-while-blocked** — with :meth:`install_blocking_probes`,
  ``concurrent.futures.Future.result`` and ``queue.Queue.get`` report a
  finding when called by a thread holding any tracked lock.

Every acquisition also feeds ``lock.*`` contention metrics (acquisition
and contention counters, wait-time histograms) into an
:class:`repro.obs.metrics.MetricsRegistry`-compatible registry, so a
traced batch run shows where threads queue.

Injection points: :class:`repro.core.session.MemSession`,
:class:`repro.core.batch.BatchRunner` and the row executors create their
locks through :func:`new_lock`, which consults the installed tracker (or
the ``REPRO_LOCK_TRACKER=1`` environment switch — how CI runs the core
suites under the tracker). Tests use the ``lock_tracker`` fixture from
:mod:`repro.analysis.pytest_lock_tracker`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.errors import LockOrderError

__all__ = [
    "AcquisitionSite",
    "LockFinding",
    "LockTracker",
    "TrackedLock",
    "active_tracker",
    "install",
    "new_lock",
    "new_rlock",
    "uninstall",
]


def _call_site(depth: int) -> str:
    """Cheap ``file:line`` of the acquiring frame (no stack walk)."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallow stacks in exotic embeds
        return "<unknown>"
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


@dataclass(frozen=True)
class AcquisitionSite:
    """Where one lock-order edge was first observed."""

    src: str
    dst: str
    thread: str
    site: str
    #: full formatted stack, captured once per new edge (rare, so cheap)
    stack: str = field(repr=False, default="")


@dataclass(frozen=True)
class LockFinding:
    """One runtime finding (``collect`` mode, and all blocked-hold cases)."""

    kind: str  # "lock-order" | "hold-while-blocked"
    message: str
    thread: str
    locks: tuple[str, ...]
    site: str

    def format(self) -> str:
        return f"[{self.kind}] {self.message} (thread {self.thread}, {self.site})"


class TrackedLock:
    """A named ``threading.Lock``/``RLock`` that reports to its tracker."""

    __slots__ = ("tracker", "name", "reentrant", "_inner")

    def __init__(self, tracker: "LockTracker", name: str, reentrant: bool = False):
        self.tracker = tracker
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        t0 = time.perf_counter()
        got = self._inner.acquire(blocking=False)
        contended = not got
        if not got:
            if not blocking:
                self.tracker._on_wait(self, 0.0, contended=True, acquired=False)
                return False
            got = self._inner.acquire(True, timeout)
        wait = time.perf_counter() - t0
        if got:
            try:
                # depth 2: caller of acquire() / the ``with`` statement
                self.tracker._on_acquired(self, wait, contended, _call_site(2))
            except BaseException:
                # raise-mode LockOrderError: hand the lock back so the
                # caller's program is still in a consistent state.
                self._inner.release()
                raise
        else:
            self.tracker._on_wait(self, wait, contended=True, acquired=False)
        return got

    def release(self) -> None:
        self.tracker._on_released(self)
        self._inner.release()

    def locked(self) -> bool:
        if self.reentrant:  # RLock has no .locked() before 3.12
            if getattr(self._inner, "_is_owned", lambda: False)():
                return True  # held by *this* thread (try-acquire would lie)
            if self._inner.acquire(blocking=False):
                self._inner.release()
                return False
            return True
        return self._inner.locked()

    def __enter__(self) -> bool:
        t0 = time.perf_counter()
        got = self._inner.acquire(blocking=False)
        contended = not got
        if not got:
            self._inner.acquire()
        wait = time.perf_counter() - t0
        try:
            self.tracker._on_acquired(self, wait, contended, _call_site(2))
        except BaseException:
            self._inner.release()
            raise
        return True

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"TrackedLock({self.name!r}, {kind})"


class _Held:
    """One entry of a thread's held-lock stack."""

    __slots__ = ("lock", "site", "count")

    def __init__(self, lock: TrackedLock, site: str):
        self.lock = lock
        self.site = site
        self.count = 1


class LockTracker:
    """Process-wide recorder of lock acquisition order and contention.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) raises :class:`LockOrderError` at the
        acquisition that closes an order cycle; ``"collect"`` records a
        :class:`LockFinding` instead. Hold-while-blocked conditions are
        always collected (raising inside ``Future.result`` would corrupt
        unrelated pool bookkeeping).
    metrics:
        Optional metrics registry for live ``lock.*`` series; defaults
        to a fresh :class:`repro.obs.metrics.MetricsRegistry`. Its
        internal locks are plain (never tracked), so emission cannot
        recurse into the tracker.
    """

    def __init__(self, mode: str = "raise", metrics=None):
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        self.mode = mode
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self._local = threading.local()
        self._lock = threading.Lock()  # guards: _edges, findings, _n_locks
        #: (src, dst) lock-class pairs -> first-observation provenance
        self._edges: dict[tuple[str, str], AcquisitionSite] = {}
        self.findings: list[LockFinding] = []
        self._n_locks = 0
        self._probes_installed = False
        self._orig_future_result = None
        self._orig_queue_get = None

    # -- factory interface (what gets injected) --------------------------------
    def lock(self, name: str) -> TrackedLock:
        """A tracked non-reentrant lock of lock class ``name``."""
        with self._lock:
            self._n_locks += 1
        return TrackedLock(self, name)

    def rlock(self, name: str) -> TrackedLock:
        """A tracked reentrant lock of lock class ``name``."""
        with self._lock:
            self._n_locks += 1
        return TrackedLock(self, name, reentrant=True)

    # -- per-thread held stack -------------------------------------------------
    def _stack(self) -> list[_Held]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def held(self) -> tuple[str, ...]:
        """Names of locks the *current thread* holds, outermost first."""
        return tuple(h.lock.name for h in self._stack())

    # -- acquisition bookkeeping -----------------------------------------------
    def _on_acquired(
        self, lock: TrackedLock, wait: float, contended: bool, site: str
    ) -> None:
        stack = self._stack()
        for entry in stack:
            if entry.lock is lock:  # reentrant re-acquire: no new edges
                entry.count += 1
                self._observe(lock.name, wait, contended)
                return
        for entry in stack:
            if entry.lock.name != lock.name:
                self._record_edge(entry, lock, site)
        stack.append(_Held(lock, site))
        self._observe(lock.name, wait, contended)

    def _on_released(self, lock: TrackedLock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].lock is lock:
                stack[i].count -= 1
                if stack[i].count == 0:
                    del stack[i]
                return

    def _on_wait(self, lock: TrackedLock, wait: float, contended: bool,
                 acquired: bool) -> None:
        self._observe(lock.name, wait, contended)

    def _observe(self, name: str, wait: float, contended: bool) -> None:
        metrics = self.metrics
        if not getattr(metrics, "enabled", True):
            return
        metrics.counter("lock.acquisitions", lock=name).inc()
        if contended:
            metrics.counter("lock.contended", lock=name).inc()
            metrics.histogram("lock.wait_seconds", lock=name).observe(wait)

    # -- order graph -----------------------------------------------------------
    def _record_edge(self, held: _Held, acquiring: TrackedLock, site: str) -> None:
        src, dst = held.lock.name, acquiring.name
        thread = threading.current_thread().name
        with self._lock:
            if (src, dst) in self._edges:
                return
            cycle = self._path(dst, src)
            edge = AcquisitionSite(
                src, dst, thread, f"{held.site} -> {site}",
                stack="".join(traceback.format_stack(sys._getframe(3))),
            )
            self._edges[(src, dst)] = edge
            if cycle is None:
                return
            cycle_edges = cycle + [edge]
        self._report_cycle(cycle_edges)

    def _path(self, start: str, goal: str) -> list[AcquisitionSite] | None:
        """DFS over the edge graph (caller holds ``_lock``)."""
        adjacency: dict[str, list[AcquisitionSite]] = {}
        # The lint can't see across call boundaries: every caller invokes
        # this helper while already inside ``with self._lock:`` (docstring
        # contract above), so the read *is* guarded.
        for (src, _dst), edge in self._edges.items():  # conc: ignore[CL101]
            adjacency.setdefault(src, []).append(edge)
        seen = {start}
        stack: list[tuple[str, list[AcquisitionSite]]] = [(start, [])]
        while stack:
            node, path = stack.pop()
            for edge in adjacency.get(node, ()):
                if edge.dst == goal:
                    return path + [edge]
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append((edge.dst, path + [edge]))
        return None

    def _report_cycle(self, cycle: list[AcquisitionSite]) -> None:
        names = [cycle[-1].src] + [e.dst for e in cycle[:-1]] + [cycle[-1].dst]
        chain = "; ".join(
            f"{e.src} -> {e.dst} (thread {e.thread}, {e.site})" for e in cycle
        )
        message = (
            f"lock-order inversion between {', '.join(dict.fromkeys(names))}: "
            f"{chain}"
        )
        finding = LockFinding(
            kind="lock-order",
            message=message,
            thread=threading.current_thread().name,
            locks=tuple(dict.fromkeys(names)),
            site=cycle[-1].site,
        )
        with self._lock:
            self.findings.append(finding)
        if getattr(self.metrics, "enabled", True):
            self.metrics.counter("lock.order_violations").inc()
        if self.mode == "raise":
            raise LockOrderError(message, cycle=tuple(cycle))

    # -- hold-while-blocked probes ----------------------------------------------
    def _check_blocked(self, what: str) -> None:
        held = self.held()
        if not held:
            return
        finding = LockFinding(
            kind="hold-while-blocked",
            message=(
                f"{what} called while holding {', '.join(held)} — every "
                "waiter on those locks now stalls behind this blocked call"
            ),
            thread=threading.current_thread().name,
            locks=held,
            site=_call_site(3),
        )
        with self._lock:
            self.findings.append(finding)
        if getattr(self.metrics, "enabled", True):
            self.metrics.counter("lock.hold_while_blocked").inc()

    def install_blocking_probes(self) -> None:
        """Patch ``Future.result`` / ``Queue.get`` to flag holders that block."""
        if self._probes_installed:
            return
        import queue
        from concurrent.futures import Future

        tracker = self
        self._orig_future_result = orig_result = Future.result
        self._orig_queue_get = orig_get = queue.Queue.get

        def result(fut, timeout=None):
            tracker._check_blocked("Future.result()")
            return orig_result(fut, timeout)

        def get(q, block=True, timeout=None):
            if block:
                tracker._check_blocked("Queue.get()")
            return orig_get(q, block, timeout)

        Future.result = result
        queue.Queue.get = get
        self._probes_installed = True

    def remove_blocking_probes(self) -> None:
        """Undo :meth:`install_blocking_probes`."""
        if not self._probes_installed:
            return
        import queue
        from concurrent.futures import Future

        Future.result = self._orig_future_result
        queue.Queue.get = self._orig_queue_get
        self._orig_future_result = self._orig_queue_get = None
        self._probes_installed = False

    # -- reporting ---------------------------------------------------------------
    def edges(self) -> dict[tuple[str, str], AcquisitionSite]:
        """Snapshot of the observed lock-order graph."""
        with self._lock:
            return dict(self._edges)

    def format_findings(self) -> str:
        with self._lock:
            findings = list(self.findings)
        lines = [f.format() for f in findings]
        lines.append(f"{len(findings)} lock finding(s)")
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop findings and the order graph (a fresh run)."""
        with self._lock:
            self._edges.clear()
            self.findings.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            return (
                f"LockTracker(mode={self.mode!r}, locks={self._n_locks}, "
                f"edges={len(self._edges)}, findings={len(self.findings)})"
            )


# --------------------------------------------------------------------------
# injectable factory plumbing
# --------------------------------------------------------------------------

_active_tracker: LockTracker | None = None
_env_checked = False
_install_lock = threading.Lock()  # guards: _active_tracker, _env_checked


def install(tracker: LockTracker) -> None:
    """Make ``tracker`` the process-wide factory behind :func:`new_lock`."""
    global _active_tracker
    with _install_lock:
        _active_tracker = tracker


def uninstall() -> None:
    """Remove the installed tracker (subsequent locks are plain)."""
    global _active_tracker
    with _install_lock:
        _active_tracker = None


def active_tracker() -> LockTracker | None:
    """The installed tracker, honouring ``REPRO_LOCK_TRACKER=1`` lazily.

    The environment path is how CI's ``tests-locktracker`` leg runs the
    existing suites under the tracker without touching any call site:
    the first :func:`new_lock` call creates a process-global raise-mode
    tracker (``REPRO_LOCK_TRACKER_MODE`` overrides) with blocking probes
    installed.
    """
    global _active_tracker, _env_checked
    with _install_lock:
        if _active_tracker is None and not _env_checked:
            _env_checked = True
            if os.environ.get("REPRO_LOCK_TRACKER", "").lower() in ("1", "true", "on"):
                tracker = LockTracker(
                    mode=os.environ.get("REPRO_LOCK_TRACKER_MODE", "raise")
                )
                tracker.install_blocking_probes()
                _active_tracker = tracker
        return _active_tracker


def new_lock(name: str) -> "threading.Lock | TrackedLock":
    """A lock from the active tracker, or a plain ``threading.Lock``.

    This is the library's injection seam: session/batch/executor code
    calls ``new_lock("session.cache")`` instead of ``threading.Lock()``
    and pays one function call extra when no tracker is installed.
    """
    tracker = active_tracker()
    if tracker is None:
        return threading.Lock()
    return tracker.lock(name)


def new_rlock(name: str) -> "threading.RLock | TrackedLock":
    """Reentrant counterpart of :func:`new_lock`."""
    tracker = active_tracker()
    if tracker is None:
        return threading.RLock()
    return tracker.rlock(name)
