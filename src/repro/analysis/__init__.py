"""SIMT correctness tooling for the simulated GPU.

Two complementary layers (see ``docs/analysis.md``):

- :mod:`repro.analysis.kernel_lint` — static AST lint over kernel generator
  functions: barrier divergence, non-atomic shared writes, unaccounted
  loops, dtype discipline. Run via ``gpumem analyze [paths...]``; wired
  into CI as a gate.
- :mod:`repro.analysis.sanitizer` — opt-in runtime race/divergence
  detector: attach a :class:`Sanitizer` to a
  :class:`repro.gpu.kernel.Device` and every shared-memory / array-argument
  access is checked, per barrier phase, for write-write and read-write
  conflicts with thread/block/phase provenance. The ``sanitized_device``
  pytest fixture (``repro.analysis.pytest_sanitizer``) packages this for
  kernel tests.

Two further static+runtime twins follow the same pattern (imported as
submodules to keep this package import light): the host concurrency pair
(:mod:`repro.analysis.concurrency_lint` /
:mod:`repro.analysis.lock_tracker`, CL1xx) and the resource-lifecycle
pair (:mod:`repro.analysis.resource_lint` /
:mod:`repro.analysis.resource_tracker`, RL1xx).
"""

from repro.analysis.kernel_lint import (
    RULES,
    Finding,
    findings_to_json,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import Access, RaceFinding, Sanitizer, TrackedArray

__all__ = [
    "RULES",
    "Access",
    "Finding",
    "RaceFinding",
    "Sanitizer",
    "TrackedArray",
    "findings_to_json",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
]
