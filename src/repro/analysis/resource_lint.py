"""Static resource-lifecycle and spawn-safety lint for the host layer.

The device analyzer (:mod:`repro.analysis.kernel_lint`) checks SIMT
invariants; the host analyzer (:mod:`repro.analysis.concurrency_lint`)
checks lock discipline. This third leg checks *resource lifetimes*: the
process tier (PR 6) and the persistent index store (PR 9) put named
``multiprocessing.shared_memory`` segments, mmap-backed bundle arrays and
cross-process ``fcntl`` file locks at the heart of the pipeline — exactly
the explicit-lifetime discipline the paper's GPU memory management lives
by, transplanted to the host. A leaked segment survives the process; a
stranded lock fd wedges every other builder of that key; an escaped mmap
view pins a bundle file past its store's life. None of that is visible to
the lock or SIMT passes.

Rules
-----

``RL101`` **shared-memory segment without guaranteed cleanup** *(error)*
    A ``SharedMemory(...)`` / ``.to_shared()`` creation whose result
    neither escapes the function (returned, yielded, stored on ``self``/
    a container, passed onward — ownership transfer) nor sees a
    ``close``/``unlink`` (``close_shared``/``unlink_shared``) call. A
    second message form fires when cleanup exists but is not on all exit
    paths: statements that can raise run between creation and a cleanup
    that is not inside a ``finally`` (or ``with``) block.

``RL102`` **non-spawn-safe field in a spec-protocol dataclass** *(error)*
    A dataclass whose name marks it as crossing process boundaries
    (``*Spec``/``*Locator``/``*Handle``/``*Payload``, the PR-6/7
    spec-protocol convention) declares a field whose annotation is a
    known non-picklable or non-spawn-safe type: locks, threads, pools,
    futures, tracers, callables/closures, mmap-backed arrays, open files,
    live ``SharedMemory`` objects. Such a field either fails to pickle or
    silently ships dead state into the worker.

``RL103`` **mmap-backed array escaping without copy** *(warning)*
    A value loaded via ``np.load(..., mmap_mode=...)`` / ``np.memmap``
    is returned or stored on an attribute without an intervening
    ``.copy()`` / ``np.array(...)``. The view pins the backing file: the
    owning store scope can neither delete nor replace the bundle while
    the array lives, and touching the array after deletion is undefined.
    Deliberate zero-copy tiers suppress with a justification.

``RL104`` **file lock acquired without guaranteed release** *(error)*
    ``fcntl.flock``/``lockf`` with an exclusive/shared request in a
    function that neither unlocks (``LOCK_UN``) nor closes the locked
    handle inside a ``finally`` block. Methods of lock-object classes
    that pair ``acquire``/``release`` (or ``__enter__``/``__exit__``)
    are exempt — the context-manager protocol is the guaranteed path.

``RL105`` **temp file/dir without cleanup** *(warning)*
    ``mkstemp``/``mkdtemp``/``NamedTemporaryFile(delete=False)`` whose
    path neither escapes nor is removed (``os.unlink``/``os.remove``/
    ``shutil.rmtree``/``.cleanup()``). Same all-exit-paths refinement as
    RL101.

A finding on a line whose trailing comment contains ``res: ignore`` (or
``res: ignore[RL103]`` for one rule) is suppressed; every suppression in
the shipped tree must carry a justification comment.

Run via ``gpumem analyze --resource [paths...]`` (or ``--all``); see
``docs/analysis.md``. The runtime twin is
:mod:`repro.analysis.resource_tracker`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

__all__ = [
    "RL_RULES",
    "ResourceFinding",
    "lint_resource_source",
    "lint_resource_file",
    "lint_resource_paths",
]

#: rule id -> (severity, short description)
RL_RULES = {
    "RL101": ("error", "shared-memory segment created without guaranteed close/unlink"),
    "RL102": ("error", "non-spawn-safe field in a spec-protocol dataclass"),
    "RL103": ("warning", "mmap-backed array escapes its owning scope without copy"),
    "RL104": ("error", "file lock acquired without guaranteed release"),
    "RL105": ("warning", "temporary file/dir created without cleanup"),
}

#: Dataclass name suffixes that mark the spec protocol (things pickled
#: across the spawn boundary by design).
_SPEC_SUFFIXES = ("Spec", "Locator", "Handle", "Payload")

#: Annotation final names that are never spawn-safe in a pickled spec.
_NON_SPAWN_SAFE_TYPES = {
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "Thread", "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue",
    "Future", "ThreadPoolExecutor", "ProcessPoolExecutor", "Executor",
    "Callable", "Tracer", "LockTracker", "ResourceTracker", "Sanitizer",
    "SharedMemory", "memmap", "mmap", "IO", "TextIO", "BinaryIO",
    "TextIOWrapper", "BufferedReader", "BufferedWriter", "FileIO",
    "Generator", "Iterator", "IndexStore", "MemSession",
}

#: Cleanup method names that retire a shared-memory resource.
_SHM_CLEANUPS = {"close", "unlink", "close_shared", "unlink_shared"}
#: Cleanup method names that retire a temp file/dir handle.
_TMP_CLEANUPS = {"cleanup", "close"}
#: Free functions that, given the temp path (or any var), remove it.
_TMP_REMOVERS = {"unlink", "remove", "rmtree", "rmdir"}

#: ``fcntl`` request names that take a lock (vs ``LOCK_UN`` releasing it).
_FLOCK_ACQUIRE_FLAGS = {"LOCK_EX", "LOCK_SH"}


@dataclass(frozen=True)
class ResourceFinding:
    """One resource-lifecycle finding (CI-gate-ready provenance)."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    scope: str | None = None

    def format(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        scope = f" [{self.scope}]" if self.scope else ""
        return f"{where}: {self.rule} {self.severity}:{scope} {self.message}"


def _final_name(expr: ast.AST) -> str | None:
    """The trailing identifier of a Name/Attribute chain, else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _walk_no_nested_functions(node: ast.AST):
    """``ast.walk`` that does not descend into nested function/class defs."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


# --------------------------------------------------------------------------
# creation-site classification
# --------------------------------------------------------------------------


def _is_shm_create(value: ast.AST) -> bool:
    """``SharedMemory(...)`` with ``create=True`` or ``.to_shared(...)``."""
    if not isinstance(value, ast.Call):
        return False
    name = _final_name(value.func)
    if name == "to_shared":
        return True
    if name == "SharedMemory":
        for kw in value.keywords:
            if kw.arg == "create" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
        return False
    return False


def _is_tmp_create(value: ast.AST) -> bool:
    """A temp artifact whose cleanup is the caller's problem."""
    if not isinstance(value, ast.Call):
        return False
    name = _final_name(value.func)
    if name in ("mkstemp", "mkdtemp"):
        return True
    if name in ("NamedTemporaryFile", "TemporaryDirectory"):
        # With delete/cleanup left on, the object cleans itself up when
        # used as a context manager; delete=False hands over ownership.
        for kw in value.keywords:
            if (
                kw.arg == "delete"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return True
        return False
    return False


def _is_mmap_load(value: ast.AST) -> bool:
    """``np.load(..., mmap_mode=...)`` (non-None) or ``np.memmap(...)``."""
    if not isinstance(value, ast.Call):
        return False
    name = _final_name(value.func)
    if name == "memmap":
        return True
    if name != "load":
        return False
    for kw in value.keywords:
        if kw.arg == "mmap_mode":
            if isinstance(kw.value, ast.Constant) and kw.value.value is None:
                return False
            return True
    return False


def _is_copy_wrapped(value: ast.AST) -> bool:
    """``x.copy()`` / ``np.array(x)`` / ``np.ascontiguousarray(x)`` etc."""
    if not isinstance(value, ast.Call):
        return False
    return _final_name(value.func) in (
        "copy", "array", "asarray", "ascontiguousarray", "deepcopy",
    )


# --------------------------------------------------------------------------
# per-function lifetime analysis (RL101 / RL103 / RL105)
# --------------------------------------------------------------------------


@dataclass
class _Tracked:
    """One tracked resource variable inside a function body."""

    var: str
    rule: str
    node: ast.AST
    what: str
    cleanups: set
    removers: set
    #: statements that may raise seen after creation, before any cleanup
    risky_after_create: bool = False
    cleaned: bool = False
    cleanup_guaranteed: bool = False
    escaped: bool = False


class _FunctionLifetimes:
    """Track create -> cleanup/escape for one function body."""

    def __init__(self, module: "_ModuleAnalysis", func, scope: str,
                 in_lock_class: bool):
        self.m = module
        self.func = func
        self.scope = scope
        self.in_lock_class = in_lock_class
        self.tracked: dict[str, _Tracked] = {}
        #: var names assigned from an mmap load (RL103 taint set)
        self.mmap_vars: set[str] = set()
        #: resource name -> unlink call sites (duplicate-unlink detection)
        self.unlinks: dict[str, list[ast.Call]] = {}

    # -- entry -----------------------------------------------------------------
    def run(self) -> None:
        self._walk(self.func.body, in_finally=False)
        self._check_flock()
        for name, calls in self.unlinks.items():
            for call in calls[1:]:
                self.m._add(
                    "RL101", call,
                    f"{name!r} is unlinked at {len(calls)} distinct sites in "
                    "one function — the second unlink races name reuse and "
                    "raises FileNotFoundError where the platform enforces it",
                    self.scope,
                )
        for t in self.tracked.values():
            if t.escaped:
                continue
            if not t.cleaned:
                self.m._add(
                    t.rule, t.node,
                    f"{t.what} assigned to {t.var!r} is neither cleaned up "
                    f"({'/'.join(sorted(t.cleanups))}) nor handed off — it "
                    "leaks on every path",
                    self.scope,
                )
            elif t.risky_after_create and not t.cleanup_guaranteed:
                self.m._add(
                    t.rule, t.node,
                    f"{t.what} assigned to {t.var!r} is cleaned up only on "
                    "the success path — statements between creation and "
                    "cleanup can raise; move the cleanup into a finally "
                    "block (or use a with statement)",
                    self.scope,
                )

    # -- statement walk ---------------------------------------------------------
    def _walk(self, stmts: list, in_finally: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, in_finally)
                for handler in stmt.handlers:
                    self._walk(handler.body, in_finally)
                self._walk(stmt.orelse, in_finally)
                # Cleanup inside this finally covers raises in the try body.
                self._walk(stmt.finalbody, True)
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan_expr(item.context_expr)
                    # ``with closing(shm)`` / ``with SharedMemory(...)``:
                    # the context manager is the guaranteed cleanup.
                    if isinstance(item.context_expr, ast.Call) and (
                        _is_shm_create(item.context_expr)
                        or _is_tmp_create(item.context_expr)
                    ):
                        continue
                self._walk(stmt.body, in_finally)
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                self._scan_expr(stmt.test)
                self._walk(stmt.body, in_finally)
                self._walk(stmt.orelse, in_finally)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter)
                self._walk(stmt.body, in_finally)
                self._walk(stmt.orelse, in_finally)
                continue
            self._leaf(stmt, in_finally)

    def _leaf(self, stmt: ast.stmt, in_finally: bool) -> None:
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt.targets, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._handle_assign([stmt.target], stmt.value, stmt)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._handle_escape_expr(stmt.value)
            self._check_mmap_return(stmt)
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                if stmt.value.value is not None:
                    self._handle_escape_expr(stmt.value.value)
            else:
                self._scan_expr(stmt.value, cleanup_in_finally=in_finally)
        self._note_risky(stmt)

    # -- assignment handling ----------------------------------------------------
    def _handle_assign(self, targets, value, stmt) -> None:
        self._scan_expr(value)
        target_names = [
            t.id for t in targets if isinstance(t, ast.Name)
        ]
        # Attribute/subscript targets: storing a tracked or mmap var on
        # self/container is an escape (ownership transfer) — and for mmap
        # vars stored on an attribute, an RL103 finding.
        for t in targets:
            if isinstance(t, (ast.Attribute, ast.Subscript)):
                if isinstance(value, ast.Name):
                    self._mark_escape(value.id)
                    if value.id in self.mmap_vars and isinstance(t, ast.Attribute):
                        self._add_mmap_escape(stmt, value.id, "an attribute")
                if _is_mmap_load(value):
                    self._add_mmap_escape(stmt, _final_name(value.func) or "load",
                                          "an attribute")
        # ``fd, path = mkstemp()``: the unpack target names all own it.
        for t in targets:
            if isinstance(t, ast.Tuple):
                target_names.extend(
                    e.id for e in t.elts if isinstance(e, ast.Name)
                )
        if not target_names:
            return
        var = target_names[0]
        if _is_shm_create(value):
            self._track(var, "RL101", stmt,
                        "shared-memory segment", _SHM_CLEANUPS, set())
        elif _is_tmp_create(value):
            # mkstemp returns (fd, path): the leak is reported once, on
            # the *path* name (the last unpacked element) — closing the fd
            # alone still leaves the file behind.
            self._track(target_names[-1], "RL105", stmt,
                        "temporary file/dir", _TMP_CLEANUPS, _TMP_REMOVERS)
        if _is_mmap_load(value):
            self.mmap_vars.add(var)
        elif isinstance(value, ast.Name) and value.id in self.mmap_vars:
            self.mmap_vars.add(var)
        elif _is_copy_wrapped(value):
            self.mmap_vars.discard(var)
        elif var in self.mmap_vars:
            self.mmap_vars.discard(var)  # rebound to something else

    def _track(self, var, rule, stmt, what, cleanups, removers) -> None:
        # mkstemp's fd element: the int fd has its own close path; track
        # the path-looking names only when both unpack to Names.
        self.tracked[var] = _Tracked(
            var=var, rule=rule, node=stmt, what=what,
            cleanups=set(cleanups), removers=set(removers),
        )

    # -- expression scanning ----------------------------------------------------
    def _scan_expr(self, node: ast.AST, cleanup_in_finally: bool = False) -> None:
        for sub in _walk_no_nested_functions(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            self._note_unlink(sub)
            if isinstance(func, ast.Attribute):
                recv = func.value
                if isinstance(recv, ast.Name) and recv.id in self.tracked:
                    t = self.tracked[recv.id]
                    if func.attr in t.cleanups:
                        t.cleaned = True
                        if cleanup_in_finally or not t.risky_after_create:
                            t.cleanup_guaranteed = cleanup_in_finally
                        continue
                if func.attr in _TMP_REMOVERS:
                    for arg in sub.args:
                        if isinstance(arg, ast.Name) and arg.id in self.tracked:
                            t = self.tracked[arg.id]
                            if func.attr in t.removers:
                                t.cleaned = True
                                t.cleanup_guaranteed = cleanup_in_finally
                    continue
            # A tracked var passed as a *call argument* transfers ownership
            # (registries, adopt(), caches): conservative no-finding.
            # Pure-inspection builtins cannot take ownership of anything.
            if (
                isinstance(func, ast.Name)
                and func.id in ("str", "repr", "len", "print", "format",
                                "int", "bool", "id", "type")
            ):
                continue
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if isinstance(arg, ast.Name):
                    self._mark_escape(arg.id)

    def _note_unlink(self, call: ast.Call) -> None:
        """Record a destroy-by-name call site for duplicate-unlink checks.

        ``x.unlink()`` / ``x.unlink_shared()`` keys on the receiver;
        module-level removers (``os.unlink(p)``) key on the path argument.
        ``Path.unlink(missing_ok=True)`` is explicitly idempotent — skipped.
        """
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("unlink", "unlink_shared"):
            return
        if any(kw.arg == "missing_ok" for kw in call.keywords):
            return
        recv = _final_name(func.value)
        if recv in ("os", "shutil", "Path", "pathlib"):
            key = _final_name(call.args[0]) if call.args else None
        else:
            key = recv
        if key is not None:
            self.unlinks.setdefault(key, []).append(call)

    def _handle_escape_expr(self, value: ast.AST) -> None:
        """Mark vars whose *ownership* leaves via a return/yield value.

        A bare tracked name (or one inside a container/call) escapes.
        Two shapes do not: ``x.attr`` (the attribute's value escapes, not
        the handle — returning ``shm.name`` leaks nothing the caller can
        close) and inspection builtins (``str(path)`` transfers nothing).
        """
        stack = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Name):
                self._mark_escape(node.id)
                continue
            if isinstance(node, ast.Attribute):
                continue
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in ("str", "repr", "len", "format",
                                         "int", "bool", "id", "type"):
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                     ast.Lambda),
                ):
                    continue
                stack.append(child)

    def _mark_escape(self, name: str) -> None:
        t = self.tracked.get(name)
        if t is not None:
            t.escaped = True

    def _note_risky(self, stmt: ast.stmt) -> None:
        """Any call or raise after creation can skip a later cleanup."""
        may_raise = isinstance(stmt, ast.Raise) or any(
            isinstance(sub, ast.Call) for sub in _walk_no_nested_functions(stmt)
        )
        if not may_raise:
            return
        for t in self.tracked.values():
            if not t.cleaned and getattr(stmt, "lineno", 0) > t.node.lineno:
                # Skip the cleanup calls themselves.
                if self._is_own_cleanup(stmt, t):
                    continue
                t.risky_after_create = True

    def _is_own_cleanup(self, stmt: ast.stmt, t: _Tracked) -> bool:
        for sub in _walk_no_nested_functions(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == t.var
                and sub.func.attr in t.cleanups
            ):
                return True
        return False

    # -- RL103 (return path) ----------------------------------------------------
    def _check_mmap_return(self, stmt: ast.Return) -> None:
        value = stmt.value
        if isinstance(value, ast.Name) and value.id in self.mmap_vars:
            self._add_mmap_escape(stmt, value.id, "the caller")
        elif _is_mmap_load(value):
            self._add_mmap_escape(stmt, "np.load(mmap_mode=...)", "the caller")

    def _add_mmap_escape(self, node, what: str, where: str) -> None:
        self.m._add(
            "RL103", node,
            f"mmap-backed array {what!r} escapes to {where} without a copy "
            "— the view pins the backing file beyond this scope; call "
            ".copy() (or np.array) before handing it out, or suppress with "
            "a justification if zero-copy is the contract",
            self.scope,
        )

    # -- RL104 ------------------------------------------------------------------
    def _check_flock(self) -> None:
        acquires: list[ast.Call] = []
        releases = 0
        release_in_finally = 0

        def scan(stmts, in_finally):
            nonlocal releases, release_in_finally
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Try):
                    scan(stmt.body, in_finally)
                    for handler in stmt.handlers:
                        scan(handler.body, in_finally)
                    scan(stmt.orelse, in_finally)
                    scan(stmt.finalbody, True)
                    continue
                for sub in _walk_no_nested_functions(stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    name = _final_name(sub.func)
                    if name not in ("flock", "lockf"):
                        if name == "close" and in_finally:
                            release_in_finally += 1
                        continue
                    flags = {
                        _final_name(a) for a in sub.args
                    } | {
                        _final_name(v) for a in sub.args
                        if isinstance(a, ast.BinOp)
                        for v in (a.left, a.right)
                    }
                    if flags & _FLOCK_ACQUIRE_FLAGS:
                        acquires.append(sub)
                    elif "LOCK_UN" in flags:
                        releases += 1
                        if in_finally:
                            release_in_finally += 1
                body = getattr(stmt, "body", None)
                if body and not isinstance(stmt, ast.Try):
                    scan(body, in_finally)
                    scan(getattr(stmt, "orelse", []), in_finally)

        scan(self.func.body, False)
        if not acquires:
            return
        if self.in_lock_class:
            # acquire/release (or __enter__/__exit__) pair on one class:
            # the paired method is the guaranteed release path.
            return
        if release_in_finally:
            return
        for call in acquires:
            self.m._add(
                "RL104", call,
                "fcntl lock taken with no LOCK_UN/close in a finally block "
                "— an exception after the acquire strands the lock (and its "
                "fd) until process exit; pair the acquire with a "
                "try/finally release or wrap the lock in a context manager",
                self.scope,
            )


# --------------------------------------------------------------------------
# module-level pass
# --------------------------------------------------------------------------


class _ModuleAnalysis:
    """One module's resource pass: RL101-RL105 findings."""

    def __init__(self, tree: ast.Module, path: str, lines: list[str]):
        self.tree = tree
        self.path = path
        self.lines = lines
        self.findings: list[ResourceFinding] = []

    def _add(self, rule: str, node: ast.AST, message: str, scope: str) -> None:
        self.findings.append(
            ResourceFinding(
                rule=rule,
                severity=RL_RULES[rule][0],
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                scope=scope,
            )
        )

    def run(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self._check_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionLifetimes(self, node, node.name, False).run()

    # -- classes ----------------------------------------------------------------
    def _check_class(self, cls: ast.ClassDef) -> None:
        if self._is_dataclass(cls) and cls.name.endswith(_SPEC_SUFFIXES):
            self._check_spec_fields(cls)
        method_names = {
            m.name for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        is_lock_class = (
            {"acquire", "release"} <= method_names
            or {"__enter__", "__exit__"} <= method_names
        )
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionLifetimes(
                    self, method, f"{cls.name}.{method.name}", is_lock_class
                ).run()

    @staticmethod
    def _is_dataclass(cls: ast.ClassDef) -> bool:
        for dec in cls.decorator_list:
            name = _final_name(dec.func if isinstance(dec, ast.Call) else dec)
            if name == "dataclass":
                return True
        return False

    def _check_spec_fields(self, cls: ast.ClassDef) -> None:
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            bad = self._non_spawn_safe(stmt.annotation)
            if bad is None and stmt.value is not None:
                if isinstance(stmt.value, ast.Lambda):
                    bad = "lambda default"
            if bad is not None:
                self._add(
                    "RL102", stmt,
                    f"field {stmt.target.id!r} of spec-protocol dataclass "
                    f"{cls.name} has non-spawn-safe type {bad!r}: it cannot "
                    "(or must not) cross the pickle/spawn boundary — ship a "
                    "name/path/bytes surrogate instead",
                    cls.name,
                )

    def _non_spawn_safe(self, annotation: ast.AST) -> str | None:
        """The offending type name inside an annotation, or None."""
        for sub in ast.walk(annotation):
            name = None
            if isinstance(sub, (ast.Name, ast.Attribute)):
                name = _final_name(sub)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                # string annotations: cheap containment check
                for known in _NON_SPAWN_SAFE_TYPES:
                    if known in sub.value:
                        name = known
                        break
            if name in _NON_SPAWN_SAFE_TYPES:
                return name
        return None


# --------------------------------------------------------------------------
# suppression + entry points
# --------------------------------------------------------------------------


def _suppressed(finding: ResourceFinding, lines: list[str]) -> bool:
    if not (1 <= finding.line <= len(lines)):
        return False
    text = lines[finding.line - 1]
    if "res: ignore" not in text:
        return False
    marker = text.split("res: ignore", 1)[1]
    if marker.startswith("["):
        rules = marker[1 : marker.index("]")] if "]" in marker else ""
        return finding.rule in {r.strip() for r in rules.split(",")}
    return True


def lint_resource_source(source: str, path: str = "<string>") -> list[ResourceFinding]:
    """Lint one module's source for RL101-RL105."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    analysis = _ModuleAnalysis(tree, path, lines)
    analysis.run()
    findings = [f for f in analysis.findings if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_resource_file(path: str) -> list[ResourceFinding]:
    """Lint one ``.py`` file (see :func:`lint_resource_source`)."""
    with open(path, encoding="utf-8") as fh:
        return lint_resource_source(fh.read(), path)


def lint_resource_paths(paths, *, select=None, ignore=None) -> list[ResourceFinding]:
    """Lint files/trees (``gpumem analyze --resource``)."""
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                files.extend(
                    os.path.join(root, n) for n in sorted(names)
                    if n.endswith(".py")
                )
        else:
            files.append(p)
    findings: list[ResourceFinding] = []
    for f in sorted(set(files)):
        findings.extend(lint_resource_file(f))
    if select:
        allowed = set(select)
        findings = [f for f in findings if f.rule in allowed]
    if ignore:
        blocked = set(ignore)
        findings = [f for f in findings if f.rule not in blocked]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
